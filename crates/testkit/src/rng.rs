//! Deterministic pseudo-random numbers without external crates.
//!
//! The generator is xoshiro256** (Blackman & Vigna), seeded through
//! SplitMix64 so that any 64-bit seed — including 0 — expands into a
//! well-mixed 256-bit state. Both algorithms are public domain and tiny,
//! which is the point: every random choice in the workspace (peer
//! selection, latency sampling, workload synthesis, property-test inputs)
//! flows through this module, so a single `u64` seed reproduces any run
//! on any machine with no registry access.
//!
//! The API mirrors the small slice of `rand` the codebase actually uses
//! (`gen_range`, `gen_bool`, `seed_from_u64`, Fisher–Yates `shuffle`), so
//! call sites read identically whether they use this module or — under
//! the `ext-rand` feature — the `rand` compatibility shim that re-exports
//! it.

/// SplitMix64 step: advances `state` and returns the next output.
///
/// Used for seed expansion and for deriving independent per-node streams
/// ([`node_stream`]); it is a bijection on `u64` with good avalanche, so
/// nearby seeds produce unrelated states.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive the seed for an independent stream `index` from a base `seed`.
///
/// This is the stream-separation helper the simulator uses to give every
/// node its own generator: two SplitMix64 steps over `(seed, index)` so
/// that neither adjacent seeds nor adjacent indices produce correlated
/// streams.
#[inline]
pub fn node_stream(seed: u64, index: u64) -> u64 {
    let mut s = seed ^ 0xA076_1D64_78BD_642F_u64.wrapping_mul(index.wrapping_add(1));
    let a = splitmix64(&mut s);
    let b = splitmix64(&mut s);
    a ^ b.rotate_left(32)
}

/// The workspace PRNG: xoshiro256** with SplitMix64 seeding.
///
/// Not cryptographically secure — it drives simulations and tests, not
/// keys. Equality of seeds implies equality of streams, which is the
/// property every reproducibility claim in this repo rests on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Build a generator from a 64-bit seed via SplitMix64 expansion.
    ///
    /// Mirrors `rand::SeedableRng::seed_from_u64` so call sites are
    /// drop-in compatible.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        TestRng { s }
    }

    /// Raw 256-bit state, for checkpointing a stream position.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Restore a generator from a previously captured state.
    ///
    /// Panics if `state` is all zeroes (the one forbidden xoshiro state).
    pub fn from_state(state: [u64; 4]) -> Self {
        assert!(state.iter().any(|&w| w != 0), "all-zero xoshiro256** state");
        TestRng { s: state }
    }

    /// Split off an independent child generator, advancing this one.
    pub fn fork(&mut self) -> TestRng {
        let a = self.next_raw();
        let b = self.next_raw();
        TestRng::seed_from_u64(a ^ b.rotate_left(32))
    }

    #[inline]
    fn next_raw(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl Rng for TestRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next_raw()
    }
}

/// The randomness seam of `penelope_core`'s [`NodeEngine`]
/// (`penelope_core::EngineRng`), implemented by literal delegation to
/// [`Rng::gen_range`] / [`Rng::gen_bool`]: an engine draw consumes
/// exactly the same generator positions the historical inline protocol
/// code did, so recorded seeds replay byte-identically through the
/// engine.
///
/// [`NodeEngine`]: penelope_core::engine::NodeEngine
impl penelope_core::EngineRng for TestRng {
    #[inline]
    fn gen_index(&mut self, upper: usize) -> usize {
        self.gen_range(0..upper)
    }

    #[inline]
    fn gen_chance(&mut self, p: f64) -> bool {
        self.gen_bool(p)
    }
}

/// The uniform-sampling surface used across the workspace.
///
/// Mirrors the `rand::Rng` methods the codebase calls, with the same
/// semantics: `gen_range` takes half-open or inclusive ranges over the
/// integer and float types, `gen_bool(p)` is a Bernoulli draw, and
/// `shuffle` is an in-place Fisher–Yates. Generic over `?Sized` so
/// `&mut R` passing works exactly as with `rand`.
pub trait Rng {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        // 53 high-quality bits → [0,1) on the standard dyadic grid.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample from `range`. Panics on an empty range.
    #[inline]
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }

    /// `true` with probability `p`. Panics unless `0 ≤ p ≤ 1`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of [0,1]");
        self.next_f64() < p
    }

    /// In-place Fisher–Yates shuffle.
    #[inline]
    fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = uniform_u64(self, i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Unbiased uniform draw from `[0, span)`; `span == 0` means the full
/// 2^64 range. Rejection sampling on the modulus threshold.
#[inline]
fn uniform_u64<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    // Values below `threshold` would bias the modulus; reject them.
    let threshold = span.wrapping_neg() % span;
    loop {
        let x = rng.next_u64();
        if x >= threshold {
            return x % span;
        }
    }
}

/// A range that can be sampled uniformly — implemented for `Range` and
/// `RangeInclusive` over the primitive integers and floats.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw one uniform sample. Panics on an empty range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_uint {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range {}..{}", self.start, self.end);
                let span = (self.end - self.start) as u64;
                self.start + uniform_u64(rng, span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range {lo}..={hi}");
                // hi - lo + 1 overflows to 0 on the full domain; that is
                // exactly the "full range" encoding uniform_u64 expects.
                let span = (hi - lo) as u64;
                lo + uniform_u64(rng, span.wrapping_add(1)) as $t
            }
        }
    )*};
}

impl_sample_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range {}..{}", self.start, self.end);
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                (self.start as $u).wrapping_add(uniform_u64(rng, span) as $u) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range {lo}..={hi}");
                let span = ((hi as $u).wrapping_sub(lo as $u) as u64).wrapping_add(1);
                (lo as $u).wrapping_add(uniform_u64(rng, span) as $u) as $t
            }
        }
    )*};
}

impl_sample_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_sample_float {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(
                    self.start < self.end && self.start.is_finite() && self.end.is_finite(),
                    "bad float range {}..{}", self.start, self.end
                );
                let f = rng.next_f64() as $t;
                let v = self.start + f * (self.end - self.start);
                // Guard the open upper bound against rounding.
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi && lo.is_finite() && hi.is_finite(), "bad float range {lo}..={hi}");
                let f = rng.next_f64() as $t;
                lo + f * (hi - lo)
            }
        }
    )*};
}

impl_sample_float!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = TestRng::seed_from_u64(42);
        let mut b = TestRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = TestRng::seed_from_u64(1);
        let mut b = TestRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_fine() {
        let mut r = TestRng::seed_from_u64(0);
        // SplitMix64 expansion never yields the forbidden all-zero state.
        assert!(r.state().iter().any(|&w| w != 0));
        let first = r.next_u64();
        assert_ne!(first, r.next_u64());
    }

    #[test]
    fn known_vector_xoshiro256starstar() {
        // Reference: xoshiro256** with state {1,2,3,4} produces 11520 first.
        let mut r = TestRng::from_state([1, 2, 3, 4]);
        assert_eq!(r.next_u64(), 11520);
        assert_eq!(r.next_u64(), 0);
        assert_eq!(r.next_u64(), 1509978240);
        assert_eq!(r.next_u64(), 1215971899390074240);
        assert_eq!(r.next_u64(), 1216172134540287360);
        assert_eq!(r.next_u64(), 607988272756665600);
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut r = TestRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.gen_range(0u64..10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
        for _ in 0..1000 {
            let v = r.gen_range(5usize..=9);
            assert!((5..=9).contains(&v));
        }
        // Degenerate inclusive range.
        assert_eq!(r.gen_range(3u32..=3), 3);
        // Signed.
        for _ in 0..100 {
            let v = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn gen_range_floats() {
        let mut r = TestRng::seed_from_u64(9);
        let mut sum = 0.0;
        for _ in 0..4096 {
            let v = r.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 4096.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        let v = r.gen_range(f64::EPSILON..1.0);
        assert!(v > 0.0 && v < 1.0);
    }

    #[test]
    fn gen_bool_probability() {
        let mut r = TestRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02, "{hits}");
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = TestRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn node_streams_are_independent() {
        let a = node_stream(42, 0);
        let b = node_stream(42, 1);
        let c = node_stream(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        let mut ra = TestRng::seed_from_u64(a);
        let mut rb = TestRng::seed_from_u64(b);
        let same = (0..64).filter(|_| ra.next_u64() == rb.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_decorrelates() {
        let mut parent = TestRng::seed_from_u64(11);
        let mut child = parent.fork();
        let same = (0..64)
            .filter(|_| parent.next_u64() == child.next_u64())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn trait_object_style_generic_passing() {
        fn sample_via_generic<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen_range(0u64..100)
        }
        let mut r = TestRng::seed_from_u64(1);
        let v = sample_via_generic(&mut r);
        assert!(v < 100);
    }
}
