//! Figures 4–8 — the scale study.
//!
//! The paper fixes the end-of-application scenario (half the cluster goes
//! idle, releasing excess; the other half is hungry) and measures, over all
//! 36 application pairs:
//!
//! * **power redistribution time** — time to shift 50 % (median, Figs. 4 & 6)
//!   and 100 % (total, Fig. 5) of the available excess;
//! * **turnaround time** — how long deciders wait for responses
//!   (Figs. 7 & 8);
//!
//! once against decider frequency at maximum scale (Figs. 4, 5, 7) and once
//! against scale at 1 Hz (Figs. 6, 8). A SLURM run that cannot finish
//! redistributing (dropped packets) reports the experiment runtime as its
//! total time, exactly as the paper does for Fig. 5.

use penelope_metrics::{SummaryStats, TextTable};
use penelope_sim::{ClusterSim, SystemKind};
use penelope_workload::Profile;

use crate::effort::Effort;
use crate::parallel::{self, CellStats};
use crate::scenarios::{pair_subset, ScaleScenario};

/// The frequency axis of Figs. 4, 5 and 7 (iterations per second).
pub const PAPER_FREQUENCIES: [f64; 8] = [1.0, 2.0, 4.0, 8.0, 12.0, 16.0, 20.0, 24.0];

/// The scale axis of Figs. 6 and 8 (the paper sweeps 44 → 1056 nodes).
pub const PAPER_SCALES: [usize; 5] = [44, 132, 264, 528, 1056];

/// Measurements for one system at one sweep point, aggregated over pairs.
#[derive(Clone, Debug, PartialEq)]
pub struct SystemPoint {
    /// Median across pairs of the 50 %-redistribution time (seconds).
    pub median_redist_s: f64,
    /// Median across pairs of the 100 %-redistribution time (seconds);
    /// incomplete runs count as the experiment runtime.
    pub total_redist_s: f64,
    /// Mean turnaround across pairs (milliseconds).
    pub turnaround_ms: f64,
    /// Standard deviation of per-pair mean turnaround (milliseconds).
    pub turnaround_std_ms: f64,
    /// Mean fraction of requests that never got a response.
    pub unanswered_frac: f64,
    /// Fraction of pairs whose redistribution completed within the horizon.
    pub completed_frac: f64,
}

/// One sweep point: the x value (frequency in Hz or scale in nodes) and
/// both systems' measurements.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepRow {
    /// Frequency (Hz) or scale (node count), depending on the sweep.
    pub x: f64,
    /// SLURM's aggregate measurements.
    pub slurm: SystemPoint,
    /// Penelope's aggregate measurements.
    pub penelope: SystemPoint,
}

/// Raw per-pair outcome of one run.
#[derive(Clone, Debug, PartialEq)]
pub struct RunOutcome {
    /// Time to shift 50 % of the excess, seconds (`None`: never happened).
    pub median_s: Option<f64>,
    /// Time to shift 100 % of the excess, seconds (`None`: never happened).
    pub total_s: Option<f64>,
    /// Mean request/response turnaround in milliseconds.
    pub turnaround_ms: f64,
    /// Fraction of requests that never received a response.
    pub unanswered: f64,
    /// How long the experiment ran after the donors finished, seconds.
    pub experiment_s: f64,
    /// Discrete events the simulator processed for this cell.
    pub events: u64,
    /// Virtual time simulated, seconds (wall-normalized by the perf
    /// harness into sim-seconds per wall-second).
    pub sim_secs: f64,
}

/// Run one (system, scenario) scale point and return its raw measurements.
pub fn run_point(system: SystemKind, scenario: &ScaleScenario) -> RunOutcome {
    let cfg = scenario.config(system);
    let epsilon = cfg.node.decider.epsilon;
    let horizon = scenario.horizon();
    let workloads = scenario.workloads(epsilon, horizon);
    let mut sim = ClusterSim::new(cfg, workloads);
    sim.track_redistribution(
        scenario.total_excess(),
        scenario.recipients(),
        scenario.donor_finish,
    );
    sim.stop_when_redistributed();
    let report = sim.run(horizon);
    let tracker = report.redistribution.as_ref().expect("tracking installed");
    let experiment_s = report
        .ended_at
        .saturating_since(scenario.donor_finish)
        .as_secs_f64();
    RunOutcome {
        median_s: tracker.median_time().map(|d| d.as_secs_f64()),
        total_s: tracker.total_time().map(|d| d.as_secs_f64()),
        turnaround_ms: report
            .turnaround
            .mean()
            .map(|d| d.as_millis_f64())
            .unwrap_or(0.0),
        unanswered: report.turnaround.unanswered_fraction(),
        experiment_s,
        events: report.events,
        sim_secs: report.ended_at.as_secs_f64(),
    }
}

fn aggregate(outcomes: &[RunOutcome]) -> SystemPoint {
    let medians: Vec<f64> = outcomes
        .iter()
        .map(|o| o.median_s.unwrap_or(o.experiment_s))
        .collect();
    let totals: Vec<f64> = outcomes
        .iter()
        .map(|o| o.total_s.unwrap_or(o.experiment_s))
        .collect();
    let turns: Vec<f64> = outcomes.iter().map(|o| o.turnaround_ms).collect();
    let turn_stats = SummaryStats::from_samples(&turns);
    SystemPoint {
        median_redist_s: SummaryStats::from_samples(&medians).median(),
        total_redist_s: SummaryStats::from_samples(&totals).median(),
        turnaround_ms: turn_stats.mean(),
        turnaround_std_ms: turn_stats.std(),
        unanswered_frac: outcomes.iter().map(|o| o.unanswered).sum::<f64>() / outcomes.len() as f64,
        completed_frac: outcomes.iter().filter(|o| o.total_s.is_some()).count() as f64
            / outcomes.len() as f64,
    }
}

/// A completed sweep: the figure rows plus the simulator work totals the
/// perf harness turns into throughput numbers.
#[derive(Clone, Debug, PartialEq)]
pub struct Sweep {
    /// One row per sweep point, in axis order.
    pub rows: Vec<SweepRow>,
    /// Aggregate cell/event/virtual-time totals across the whole sweep.
    pub stats: CellStats,
}

/// One independent simulation cell of a sweep.
struct Cell {
    system: SystemKind,
    scenario: ScaleScenario,
}

/// Run every (point, pair, system) cell of a sweep — fanned out over
/// `jobs` workers — and reassemble rows in axis order. Each cell's seed
/// depends only on its own (nodes, frequency, pair) coordinates, so the
/// result is identical for any worker count.
fn run_sweep(pairs: &[(Profile, Profile)], points: &[(usize, f64, f64)], jobs: usize) -> Sweep {
    let mut cells = Vec::with_capacity(points.len() * pairs.len() * 2);
    for &(nodes, frequency_hz, _) in points {
        for (pi, (a, b)) in pairs.iter().enumerate() {
            let seed = (nodes as u64) << 20 | (frequency_hz as u64) << 8 | pi as u64;
            let scenario = ScaleScenario::for_pair(a, b, nodes, frequency_hz, seed);
            cells.push(Cell {
                system: SystemKind::Slurm,
                scenario: scenario.clone(),
            });
            cells.push(Cell {
                system: SystemKind::Penelope,
                scenario,
            });
        }
    }
    let outcomes = parallel::par_map_adaptive(jobs, &cells, |c| run_point(c.system, &c.scenario));
    let mut stats = CellStats::default();
    for o in &outcomes {
        stats.absorb(o.events, o.sim_secs);
    }
    let per_row = pairs.len() * 2;
    let rows = points
        .iter()
        .enumerate()
        .map(|(ri, &(_, _, x))| {
            let chunk = &outcomes[ri * per_row..(ri + 1) * per_row];
            let slurm: Vec<RunOutcome> = chunk.iter().step_by(2).cloned().collect();
            let penelope: Vec<RunOutcome> = chunk.iter().skip(1).step_by(2).cloned().collect();
            SweepRow {
                x,
                slurm: aggregate(&slurm),
                penelope: aggregate(&penelope),
            }
        })
        .collect();
    Sweep { rows, stats }
}

/// Figs. 4/5/7 with an explicit worker count: sweep decider frequency at
/// the effort's maximum scale, cells fanned out over `jobs` workers.
pub fn frequency_sweep_with_jobs(effort: Effort, frequencies: &[f64], jobs: usize) -> Sweep {
    let pairs = pair_subset(effort.pairs());
    let nodes = effort.max_scale_nodes();
    let points: Vec<(usize, f64, f64)> = frequencies.iter().map(|&f| (nodes, f, f)).collect();
    run_sweep(&pairs, &points, jobs)
}

/// Figs. 4/5/7: sweep decider frequency at the effort's maximum scale,
/// parallel across `PENELOPE_JOBS` workers (default: all cores).
pub fn frequency_sweep(effort: Effort, frequencies: &[f64]) -> Vec<SweepRow> {
    frequency_sweep_with_jobs(effort, frequencies, parallel::jobs_from_env()).rows
}

/// Figs. 6/8 with an explicit worker count: sweep scale at 1 iteration
/// per second, cells fanned out over `jobs` workers.
pub fn scale_sweep_with_jobs(effort: Effort, scales: &[usize], jobs: usize) -> Sweep {
    let pairs = pair_subset(effort.pairs());
    let points: Vec<(usize, f64, f64)> = scales
        .iter()
        .map(|&n| {
            let n = if n % 2 == 0 { n } else { n + 1 };
            (n, 1.0, n as f64)
        })
        .collect();
    run_sweep(&pairs, &points, jobs)
}

/// Figs. 6/8: sweep scale at 1 iteration per second, parallel across
/// `PENELOPE_JOBS` workers (default: all cores).
pub fn scale_sweep(effort: Effort, scales: &[usize]) -> Vec<SweepRow> {
    scale_sweep_with_jobs(effort, scales, parallel::jobs_from_env()).rows
}

fn render_series(
    title: &str,
    x_label: &str,
    rows: &[SweepRow],
    pick: impl Fn(&SystemPoint) -> String,
) -> String {
    let mut t = TextTable::new(vec![x_label, "SLURM", "Penelope"]);
    for r in rows {
        t.row(vec![format!("{}", r.x), pick(&r.slurm), pick(&r.penelope)]);
    }
    format!("{title}\n{}", t.render())
}

/// Fig. 4: median redistribution time (s) vs frequency.
pub fn render_fig4(rows: &[SweepRow]) -> String {
    render_series(
        "Figure 4: median redistribution time (s) vs decider frequency (Hz)",
        "freq",
        rows,
        |p| format!("{:.2}", p.median_redist_s),
    )
}

/// Fig. 5: total redistribution time (s) vs frequency, with completion rate.
pub fn render_fig5(rows: &[SweepRow]) -> String {
    render_series(
        "Figure 5: total redistribution time (s) vs decider frequency (Hz) \
         [incomplete runs count as experiment runtime]",
        "freq",
        rows,
        |p| {
            format!(
                "{:.2} ({:.0}% complete)",
                p.total_redist_s,
                p.completed_frac * 100.0
            )
        },
    )
}

/// Fig. 6: median redistribution time (s) vs scale.
pub fn render_fig6(rows: &[SweepRow]) -> String {
    render_series(
        "Figure 6: median redistribution time (s) vs scale (nodes)",
        "nodes",
        rows,
        |p| format!("{:.2}", p.median_redist_s),
    )
}

/// Fig. 7: mean turnaround time (ms) vs frequency.
pub fn render_fig7(rows: &[SweepRow]) -> String {
    render_series(
        "Figure 7: mean turnaround time (ms) vs decider frequency (Hz)",
        "freq",
        rows,
        |p| {
            format!(
                "{:.3} +/-{:.3} (lost {:.0}%)",
                p.turnaround_ms,
                p.turnaround_std_ms,
                p.unanswered_frac * 100.0
            )
        },
    )
}

/// Fig. 8: mean turnaround time (ms) vs scale.
pub fn render_fig8(rows: &[SweepRow]) -> String {
    render_series(
        "Figure 8: mean turnaround time (ms) vs scale (nodes)",
        "nodes",
        rows,
        |p| format!("{:.3} +/-{:.3}", p.turnaround_ms, p.turnaround_std_ms),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequency_sweep_shapes() {
        // Smoke effort, two frequencies. Expect the paper's qualitative
        // shapes even at small scale:
        //  - Penelope's median redistribution time improves with frequency;
        //  - Penelope stays complete (100 % of pairs redistribute).
        let rows = frequency_sweep(Effort::Smoke, &[1.0, 8.0]);
        assert_eq!(rows.len(), 2);
        let (lo, hi) = (&rows[0], &rows[1]);
        assert!(
            hi.penelope.median_redist_s < lo.penelope.median_redist_s,
            "Penelope did not speed up with frequency: {} -> {}",
            lo.penelope.median_redist_s,
            hi.penelope.median_redist_s
        );
        assert!(lo.penelope.completed_frac > 0.9);
        assert!(lo.slurm.completed_frac > 0.9);
        // At low scale/frequency SLURM's central cache redistributes faster
        // (§3.3: centralized converges faster when not a bottleneck).
        assert!(lo.slurm.median_redist_s <= lo.penelope.median_redist_s);
    }

    #[test]
    fn turnaround_grows_with_scale_for_slurm_only() {
        // SLURM turnaround grows with scale — the synchronized request
        // burst queues at the serial server once the burst outpaces what
        // the server can drain inside the launch-jitter window (~330
        // requests), so the effect appears between ~264 and 1056 nodes.
        // Penelope's stays flat: the same load is spread over all pools.
        use crate::scenarios::ScaleScenario;
        use penelope_workload::npb;
        let measure = |n: usize| {
            let sc = ScaleScenario::for_pair(&npb::bt(), &npb::ep(), n, 1.0, 7);
            (
                run_point(SystemKind::Slurm, &sc).turnaround_ms,
                run_point(SystemKind::Penelope, &sc).turnaround_ms,
            )
        };
        let (slurm_small, pen_small) = measure(264);
        let (slurm_large, pen_large) = measure(1056);
        assert!(
            slurm_large > slurm_small * 3.0,
            "SLURM turnaround did not grow with scale: {slurm_small} -> {slurm_large} ms"
        );
        let pen_growth = pen_large / pen_small;
        assert!(
            pen_growth < 1.5,
            "Penelope turnaround grew with scale: {pen_small} -> {pen_large} ms"
        );
    }

    #[test]
    fn parallel_sweep_matches_serial_bitwise() {
        // The conformance contract of the parallel engine: for a fixed
        // seed formula, the fanned-out sweep produces exactly the rows the
        // serial sweep does — f64-equal on every aggregated metric and
        // equal on every event/virtual-time total.
        let serial = frequency_sweep_with_jobs(Effort::Smoke, &[1.0, 8.0], 1);
        let parallel = frequency_sweep_with_jobs(Effort::Smoke, &[1.0, 8.0], 4);
        assert_eq!(serial.rows, parallel.rows);
        assert_eq!(serial.stats, parallel.stats);
        assert!(serial.stats.events > 0);
        assert_eq!(serial.stats.cells, 2 * Effort::Smoke.pairs() * 2);

        let serial = scale_sweep_with_jobs(Effort::Smoke, &[32, 64], 1);
        let parallel = scale_sweep_with_jobs(Effort::Smoke, &[32, 64], 3);
        assert_eq!(serial.rows, parallel.rows);
        assert_eq!(serial.stats, parallel.stats);
    }

    #[test]
    fn renderers_produce_all_series() {
        let rows = scale_sweep(Effort::Smoke, &[32, 96]);
        assert_eq!(rows.len(), 2);
        assert!(render_fig4(&rows).contains("Figure 4"));
        assert!(render_fig5(&rows).contains("Figure 5"));
        assert!(render_fig6(&rows).contains("Figure 6"));
        assert!(render_fig7(&rows).contains("Figure 7"));
        assert!(render_fig8(&rows).contains("Figure 8"));
        // Small smoke clusters must still fully redistribute.
        assert!(rows[0].penelope.completed_frac > 0.9);
        assert!(rows[0].slurm.completed_frac > 0.9);
    }
}
