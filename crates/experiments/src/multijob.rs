//! Extension: coordinator faults under back-to-back jobs.
//!
//! §4.4 predicts: "in a generalized environment multiple workloads would
//! run on the same hardware back to back. If these workloads have
//! drastically different power consumption patterns, a failure to SLURM's
//! server could throttle application performance even more than is
//! indicated by our data." This experiment tests that prediction: each node
//! runs a random sequence of NPB jobs, the coordinator dies early, and we
//! measure how the faulty-SLURM penalty scales with the number of jobs per
//! node (more jobs ⇒ more power-pattern changes after the caps froze).

use penelope_metrics::{geometric_mean, TextTable};
use penelope_sim::{ClusterSim, FaultScript, SystemKind};
use penelope_units::{NodeId, SimTime};
use penelope_workload::{synth, Profile};

use crate::effort::Effort;

/// One row: jobs-per-node vs normalized performance of the faulty systems.
#[derive(Clone, Debug)]
pub struct MultiJobRow {
    /// Number of back-to-back jobs each node runs.
    pub jobs_per_node: usize,
    /// Faulty SLURM, normalized to Fair.
    pub slurm_faulty: f64,
    /// Faulty (one client dead) Penelope, normalized to Fair.
    pub penelope_faulty: f64,
}

/// The experiment result.
#[derive(Clone, Debug)]
pub struct MultiJobResult {
    /// One row per jobs-per-node setting.
    pub rows: Vec<MultiJobRow>,
}

impl MultiJobResult {
    /// Render as a table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec!["jobs/node", "SLURM (faulty)", "Penelope (faulty)"]);
        for r in &self.rows {
            t.row(vec![
                format!("{}", r.jobs_per_node),
                format!("{:.3}", r.slurm_faulty),
                format!("{:.3}", r.penelope_faulty),
            ]);
        }
        format!(
            "Extension (S4.4 prediction): coordinator fault with back-to-back jobs\n{}",
            t.render()
        )
    }

    /// How much worse faulty SLURM got from the fewest to the most jobs,
    /// in percent (positive = the paper's prediction held).
    pub fn slurm_degradation_pct(&self) -> f64 {
        let first = self.rows.first().expect("rows");
        let last = self.rows.last().expect("rows");
        (first.slurm_faulty / last.slurm_faulty - 1.0) * 100.0
    }
}

fn workloads(nodes: usize, jobs: usize, time_scale: f64, seed: u64) -> Vec<Profile> {
    (0..nodes)
        .map(|i| synth::npb_sequence(seed.wrapping_add(i as u64 * 7919), jobs).scaled(time_scale))
        .collect()
}

fn run_one(
    system: SystemKind,
    profiles: Vec<Profile>,
    per_socket_cap_w: u64,
    fault_at: Option<SimTime>,
    seed: u64,
) -> f64 {
    let nodes = profiles.len();
    let cfg = crate::scenarios::paper_cluster_config(system, per_socket_cap_w, nodes, seed);
    let longest = profiles
        .iter()
        .map(|p| p.nominal_runtime_secs())
        .fold(0.0, f64::max);
    let horizon_secs = longest * 12.0 + 30.0;
    let horizon = SimTime::from_nanos((horizon_secs * 1e9) as u64);
    let mut sim = ClusterSim::new(cfg, profiles);
    if let Some(at) = fault_at {
        match system {
            SystemKind::Slurm => sim.install_faults(&FaultScript::kill_server_at(at)),
            SystemKind::Penelope => sim.install_faults(&FaultScript::kill_node_at(
                at,
                NodeId::new(nodes as u32 - 1),
            )),
            SystemKind::Fair => {}
        }
    }
    sim.run(horizon).runtime_secs().unwrap_or(horizon_secs)
}

/// Sweep jobs-per-node ∈ {1, 2, 4} over several random job assignments.
pub fn run(effort: Effort) -> MultiJobResult {
    let nodes = effort.cluster_nodes();
    let ts = effort.time_scale();
    let repeats = match effort {
        Effort::Smoke => 2,
        Effort::Quick => 4,
        Effort::Full => 8,
    };
    let cap_w = 70u64;
    let mut rows = Vec::new();
    for jobs in [1usize, 2, 4] {
        let mut slurm_norm = Vec::new();
        let mut pen_norm = Vec::new();
        for rep in 0..repeats {
            let seed = (jobs as u64) << 32 | rep as u64;
            let profiles = workloads(nodes, jobs, ts, seed);
            let fair = run_one(SystemKind::Fair, profiles.clone(), cap_w, None, seed);
            let fault_at = SimTime::from_nanos((fair * 0.2 * 1e9) as u64);
            let slurm = run_one(
                SystemKind::Slurm,
                profiles.clone(),
                cap_w,
                Some(fault_at),
                seed,
            );
            let pen = run_one(SystemKind::Penelope, profiles, cap_w, Some(fault_at), seed);
            slurm_norm.push(fair / slurm);
            pen_norm.push(fair / pen);
        }
        rows.push(MultiJobRow {
            jobs_per_node: jobs,
            slurm_faulty: geometric_mean(&slurm_norm),
            penelope_faulty: geometric_mean(&pen_norm),
        });
    }
    MultiJobResult { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn penelope_stays_ahead_regardless_of_job_count() {
        let r = run(Effort::Smoke);
        assert_eq!(r.rows.len(), 3);
        for row in &r.rows {
            assert!(
                row.penelope_faulty > row.slurm_faulty,
                "at {} jobs: penelope {} !> slurm {}",
                row.jobs_per_node,
                row.penelope_faulty,
                row.slurm_faulty
            );
        }
        assert!(r.render().contains("back-to-back"));
    }
}
