//! The parallel experiment engine.
//!
//! Every sweep in the harness decomposes into *cells* — one independent
//! `ClusterSim` run per (system, scenario, application pair) — and each
//! cell derives its RNG streams from its own deterministic seed, never from
//! shared mutable state. That makes the cells embarrassingly parallel:
//! [`par_map`] fans them out over a scoped worker pool of plain `std`
//! threads and reassembles results in input order, so a parallel sweep is
//! *bit-for-bit identical* to a serial one (asserted by the conformance
//! test in [`crate::scale`]).
//!
//! Worker count comes from `PENELOPE_JOBS` (default: available
//! parallelism); `PENELOPE_JOBS=1` takes the plain serial path with no
//! threads at all, which is what the perf harness times as its speedup
//! baseline.
//!
//! Tiny sweeps are cheaper than a thread pool: [`par_map_adaptive`]
//! times the first cell inline and only spawns workers when the
//! projected sweep cost clears [`PAR_MIN_TOTAL_S`], so smoke-effort
//! matrices no longer pay for parallelism they cannot amortize.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The machine's available parallelism (1 if it cannot be determined).
pub fn available_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Worker count from the `PENELOPE_JOBS` environment variable, defaulting
/// to [`available_jobs`]. Panics (with the offending value) on anything
/// that is not a positive integer — a silently ignored typo would quietly
/// serialize or misconfigure a long sweep.
pub fn jobs_from_env() -> usize {
    match std::env::var("PENELOPE_JOBS") {
        Ok(v) => parse_jobs(&v).unwrap_or_else(|e| panic!("{e}")),
        Err(std::env::VarError::NotPresent) => available_jobs(),
        Err(std::env::VarError::NotUnicode(v)) => {
            panic!("PENELOPE_JOBS must be a positive integer, got non-unicode {v:?}")
        }
    }
}

/// Parse a `PENELOPE_JOBS` value: a positive integer.
pub fn parse_jobs(v: &str) -> Result<usize, String> {
    match v.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!(
            "PENELOPE_JOBS must be a positive integer, got {v:?}"
        )),
    }
}

/// Map `f` over `items` on up to `jobs` scoped worker threads, returning
/// results in input order.
///
/// Work is distributed by an atomic cursor (dynamic load balancing: cells
/// vary from milliseconds to seconds), and each result lands in its own
/// slot, so ordering is exact regardless of completion order. `jobs <= 1`
/// or a single item runs inline on the caller's thread. A panicking cell
/// propagates and fails the whole sweep.
pub fn par_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if jobs <= 1 || n <= 1 {
        return items.iter().map(f).collect();
    }
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(n) {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(&items[i]);
                *results[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every claimed slot")
        })
        .collect()
}

/// Projected sweep wall time (seconds) below which [`par_map_adaptive`]
/// stays serial: spawning a scoped thread pool costs on the order of a
/// hundred microseconds plus cache-warming, so fanning out a sweep that
/// finishes in a few milliseconds *loses* wall time (the nominal and
/// churn matrices at smoke effort measured 0.5–0.6× "speedups").
pub const PAR_MIN_TOTAL_S: f64 = 0.01;

/// Should a sweep whose first cell took `first_cell_s` seconds, with
/// `cells` cells in total, skip the worker pool? True when the serial
/// projection (`first_cell_s * cells`) is under `threshold_s`.
///
/// The first cell is the sample because sweep cells are near-uniform in
/// cost (same scenario shape, different parameters); a sweep whose cost
/// is front-loaded just pays the pool it would have paid anyway.
pub fn should_stay_serial(first_cell_s: f64, cells: usize, threshold_s: f64) -> bool {
    first_cell_s * cells as f64 <= threshold_s
}

/// [`par_map`] with a measured serial fallback: the first cell runs (and
/// is timed) on the caller's thread, and the pool is spawned for the
/// remainder only when the projected total exceeds `threshold_s`.
///
/// Results are bit-identical to [`par_map`] in either regime — cells are
/// independent and land in input order — so sweeps can adopt this
/// without disturbing the serial-vs-parallel conformance checks.
pub fn par_map_adaptive_with_threshold<T, R, F>(
    jobs: usize,
    items: &[T],
    threshold_s: f64,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if jobs <= 1 || n <= 1 {
        return items.iter().map(f).collect();
    }
    let start = std::time::Instant::now();
    let first = f(&items[0]);
    let first_cell_s = start.elapsed().as_secs_f64();
    let mut out = Vec::with_capacity(n);
    out.push(first);
    if should_stay_serial(first_cell_s, n, threshold_s) {
        out.extend(items[1..].iter().map(f));
    } else {
        out.append(&mut par_map(jobs, &items[1..], f));
    }
    out
}

/// [`par_map_adaptive_with_threshold`] at the default [`PAR_MIN_TOTAL_S`].
pub fn par_map_adaptive<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_adaptive_with_threshold(jobs, items, PAR_MIN_TOTAL_S, f)
}

/// Aggregate simulator work done by a batch of cells, reported by the
/// sweeps so the perf harness can turn wall time into events/sec and
/// sim-seconds/wall-second.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CellStats {
    /// Number of simulation cells executed.
    pub cells: usize,
    /// Total discrete events processed across cells.
    pub events: u64,
    /// Total virtual time simulated across cells, seconds.
    pub sim_secs: f64,
}

impl CellStats {
    /// Fold one cell's contribution in.
    pub fn absorb(&mut self, events: u64, sim_secs: f64) {
        self.cells += 1;
        self.events += events;
        self.sim_secs += sim_secs;
    }

    /// Merge another batch's totals.
    pub fn merge(&mut self, other: &CellStats) {
        self.cells += other.cells;
        self.events += other.events;
        self.sim_secs += other.sim_secs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<u64> = (0..257).collect();
        let serial = par_map(1, &items, |&x| x * x);
        let parallel = par_map(8, &items, |&x| x * x);
        assert_eq!(serial, parallel);
        assert_eq!(parallel[256], 256 * 256);
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(4, &empty, |&x| x).is_empty());
        assert_eq!(par_map(4, &[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn par_map_runs_more_items_than_workers() {
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map(3, &items, |&x| x + 1);
        assert_eq!(out.len(), 1000);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i + 1));
    }

    #[test]
    fn serial_projection_decides_the_fallback() {
        // 1 ms cells, 5 of them -> 5 ms projected, under a 10 ms floor.
        assert!(should_stay_serial(0.001, 5, 0.01));
        // 5 ms cells, 36 of them -> 180 ms projected, worth the pool.
        assert!(!should_stay_serial(0.005, 36, 0.01));
        // Degenerate inputs stay serial rather than spawning for nothing.
        assert!(should_stay_serial(0.0, 1000, 0.01));
    }

    #[test]
    fn adaptive_map_matches_par_map_in_both_regimes() {
        let items: Vec<u64> = (0..57).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
        // Threshold so high every sweep stays serial...
        let serial = par_map_adaptive_with_threshold(8, &items, f64::INFINITY, |&x| x * 3 + 1);
        // ...and so low (negative) every sweep takes the pool.
        let pooled = par_map_adaptive_with_threshold(8, &items, -1.0, |&x| x * 3 + 1);
        assert_eq!(serial, expect);
        assert_eq!(pooled, expect);
        // Default threshold, jobs=1 and tiny inputs: still exact.
        assert_eq!(par_map_adaptive(1, &items, |&x| x * 3 + 1), expect);
        let empty: Vec<u64> = vec![];
        assert!(par_map_adaptive(4, &empty, |&x| x).is_empty());
        assert_eq!(par_map_adaptive(4, &[9u64], |&x| x + 1), vec![10]);
    }

    #[test]
    fn parse_jobs_accepts_positive_integers_only() {
        assert_eq!(parse_jobs("1"), Ok(1));
        assert_eq!(parse_jobs(" 16 "), Ok(16));
        assert!(parse_jobs("0").is_err());
        assert!(parse_jobs("-2").is_err());
        assert!(parse_jobs("many").is_err());
        assert!(parse_jobs("").is_err());
    }

    #[test]
    fn cell_stats_fold_and_merge() {
        let mut a = CellStats::default();
        a.absorb(100, 2.0);
        a.absorb(50, 1.0);
        let mut b = CellStats::default();
        b.absorb(10, 0.5);
        a.merge(&b);
        assert_eq!(a.cells, 3);
        assert_eq!(a.events, 160);
        assert!((a.sim_secs - 3.5).abs() < 1e-12);
    }

    #[test]
    fn available_jobs_is_positive() {
        assert!(available_jobs() >= 1);
    }
}
