//! Shared scenario builders.

use penelope_core::DeciderConfig;
use penelope_sim::{ClusterConfig, SystemKind};
use penelope_units::{NodeId, Power, SimTime};
use penelope_workload::{npb, PerfModel, Phase, Profile};

/// Build the paper's real-cluster workload layout for one application pair:
/// app `a` on the first half of the nodes, app `b` on the second half
/// (§4.1), with profile work compressed by `time_scale`.
pub fn pair_workloads(a: &Profile, b: &Profile, nodes: usize, time_scale: f64) -> Vec<Profile> {
    assert!(
        nodes >= 2 && nodes.is_multiple_of(2),
        "need an even node count"
    );
    let a = a.scaled(time_scale);
    let b = b.scaled(time_scale);
    let mut v = Vec::with_capacity(nodes);
    for _ in 0..nodes / 2 {
        v.push(a.clone());
    }
    for _ in 0..nodes / 2 {
        v.push(b.clone());
    }
    v
}

/// The subset of application pairs used at a given effort, deterministic
/// and spread across the suite (stride sampling of the 36 pairs).
pub fn pair_subset(count: usize) -> Vec<(Profile, Profile)> {
    let all = npb::all_pairs();
    let count = count.min(all.len());
    if count == all.len() {
        return all;
    }
    // Integer stride: `i·n/count` yields `count` distinct, monotonically
    // increasing indices reaching into the tail of the suite. The old
    // float version aliased adjacent picks for some counts (truncation
    // mapped two `i`s to the same index) and never sampled the last pair.
    (0..count)
        .map(|i| all[i * all.len() / count].clone())
        .collect()
}

/// Cluster config for the Fig. 2/3 experiments at a given per-socket cap
/// (the paper tests 60–100 W per socket, 2 sockets per node).
pub fn paper_cluster_config(
    system: SystemKind,
    per_socket_cap_w: u64,
    nodes: usize,
    seed: u64,
) -> ClusterConfig {
    let budget = Power::from_watts_u64(per_socket_cap_w * 2 * nodes as u64);
    let mut cfg = ClusterConfig::paper_defaults(system, budget);
    cfg.seed = seed;
    cfg
}

/// The end-of-application scale scenario (§4.5): half the cluster (the
/// *donors*) runs an application that completes early, releasing its power;
/// the other half (the *recipients*) stays power-hungry. Parameterized by
/// an application pair so the 36-pair sweep yields a distribution, as in
/// the paper's box plots.
#[derive(Clone, Debug)]
pub struct ScaleScenario {
    /// Client node count (half donors, half recipients).
    pub nodes: usize,
    /// Decider iteration frequency.
    pub frequency_hz: f64,
    /// When the donors' application completes.
    pub donor_finish: SimTime,
    /// Demand of each recipient while hungry.
    pub recipient_demand: Power,
    /// Initial per-node cap.
    pub initial_cap: Power,
    /// Excess released per donor once idle (initial cap decays to the 80 W
    /// safe floor).
    pub excess_per_donor: Power,
    /// RNG seed.
    pub seed: u64,
}

impl ScaleScenario {
    /// Build the scenario for application pair `(a, b)`: `a`'s nominal
    /// runtime sets when the donors finish (compressed into 5–15 s), `b`'s
    /// mean demand sets how hungry the recipients are.
    pub fn for_pair(a: &Profile, b: &Profile, nodes: usize, frequency_hz: f64, seed: u64) -> Self {
        assert!(
            nodes >= 2 && nodes.is_multiple_of(2),
            "need an even node count"
        );
        // Map a's nominal runtime (≈120–400 s) into a 5–15 s donor phase.
        let rt = a.nominal_runtime_secs();
        let donor_secs = 5.0 + 10.0 * ((rt - 100.0) / 300.0).clamp(0.0, 1.0);
        // Map b's mean demand (≈148–245 W) into a 240–280 W recipient
        // appetite so every recipient can absorb its share of the excess.
        let mean_b = b.mean_demand().as_watts();
        let rec = 240.0 + 40.0 * ((mean_b - 148.0) / 100.0).clamp(0.0, 1.0);
        ScaleScenario {
            nodes,
            frequency_hz,
            donor_finish: SimTime::from_nanos((donor_secs * 1e9) as u64),
            recipient_demand: Power::from_watts(rec),
            initial_cap: Power::from_watts_u64(160),
            excess_per_donor: Power::from_watts_u64(80),
            seed,
        }
    }

    /// The per-node workload profiles: donors hold `initial − ε` (stable —
    /// neither hungry nor excess) until they finish, recipients grind at
    /// their demand far beyond the horizon.
    pub fn workloads(&self, epsilon: Power, horizon: SimTime) -> Vec<Profile> {
        let perf = PerfModel::default();
        let donor_demand = self.initial_cap - epsilon;
        let donor = Profile::new(
            "donor",
            vec![Phase::new(
                donor_demand,
                self.donor_finish.as_secs_f64().max(0.5),
            )],
            perf,
        );
        let recipient = Profile::new(
            "recipient",
            vec![Phase::new(
                self.recipient_demand,
                horizon.as_secs_f64() * 4.0,
            )],
            perf,
        );
        let mut v = Vec::with_capacity(self.nodes);
        for _ in 0..self.nodes / 2 {
            v.push(donor.clone());
        }
        for _ in 0..self.nodes / 2 {
            v.push(recipient.clone());
        }
        v
    }

    /// Cluster config for this scenario under `system`.
    pub fn config(&self, system: SystemKind) -> ClusterConfig {
        let budget = self.initial_cap * self.nodes as u64;
        let mut cfg = ClusterConfig::paper_defaults(system, budget);
        cfg.node.decider = DeciderConfig {
            epsilon: cfg.node.decider.epsilon,
            ..DeciderConfig::at_frequency(self.frequency_hz)
        };
        cfg.seed = self.seed;
        // The scale study replays profiles; deciders "no longer interact
        // with hardware" (§4.5), so drop the RAPL actuation lag.
        cfg.rapl.actuation_delay = penelope_units::SimDuration::ZERO;
        cfg.management_overhead = 0.0;
        cfg
    }

    /// Total excess that becomes available when the donors finish.
    pub fn total_excess(&self) -> Power {
        self.excess_per_donor * (self.nodes as u64 / 2)
    }

    /// The recipient node ids (second half of the cluster).
    pub fn recipients(&self) -> Vec<NodeId> {
        (self.nodes / 2..self.nodes)
            .map(|i| NodeId::new(i as u32))
            .collect()
    }

    /// A horizon long enough for redistribution to complete at this
    /// frequency: the donors finish, then we allow 200 decider periods
    /// (plus slack) for the power to move.
    pub fn horizon(&self) -> SimTime {
        let period = 1.0 / self.frequency_hz;
        self.donor_finish + penelope_units::SimDuration::from_secs_f64(200.0 * period + 20.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use penelope_workload::npb;

    #[test]
    fn pair_workloads_split_halves() {
        let v = pair_workloads(&npb::ep(), &npb::dc(), 6, 0.5);
        assert_eq!(v.len(), 6);
        assert_eq!(v[0].name, "EP");
        assert_eq!(v[3].name, "DC");
        assert!(
            (v[0].nominal_runtime_secs() - npb::ep().nominal_runtime_secs() * 0.5).abs() < 1e-9
        );
    }

    #[test]
    fn pair_subset_is_spread_and_deterministic() {
        let s = pair_subset(8);
        assert_eq!(s.len(), 8);
        assert_eq!(pair_subset(8).len(), 8);
        // First pair of the full set is included, and the subset spans it.
        assert_eq!(s[0].0.name, npb::all_pairs()[0].0.name);
        assert_eq!(pair_subset(100).len(), 36);
    }

    #[test]
    fn pair_subset_picks_are_distinct_at_every_count() {
        let all = npb::all_pairs();
        let name = |p: &(Profile, Profile)| format!("{}+{}", p.0.name, p.1.name);
        for count in 1..=all.len() {
            let s = pair_subset(count);
            assert_eq!(s.len(), count, "count {count}");
            let mut names: Vec<String> = s.iter().map(name).collect();
            names.dedup();
            assert_eq!(names.len(), count, "aliased picks at count {count}");
        }
        // The sample must reach the tail of the suite: at any count ≥ 2
        // the last pick lands in the back half, and the full sweep ends
        // on the final pair.
        let s = pair_subset(2);
        assert_eq!(name(&s[1]), name(&all[all.len() / 2]));
        let s = pair_subset(all.len());
        assert_eq!(name(s.last().unwrap()), name(all.last().unwrap()));
    }

    #[test]
    fn scale_scenario_parameters_in_range() {
        for (a, b) in npb::all_pairs() {
            let sc = ScaleScenario::for_pair(&a, &b, 44, 1.0, 0);
            let d = sc.donor_finish.as_secs_f64();
            assert!((5.0..=15.0).contains(&d), "{} donor {d}", a.name);
            let r = sc.recipient_demand.as_watts();
            assert!((240.0..=280.0).contains(&r), "{} recipient {r}", b.name);
            assert_eq!(sc.total_excess(), Power::from_watts_u64(80 * 22));
            assert_eq!(sc.recipients().len(), 22);
            assert!(sc.horizon() > sc.donor_finish);
        }
    }

    #[test]
    fn scale_workloads_shape() {
        let sc = ScaleScenario::for_pair(&npb::ep(), &npb::cg(), 8, 2.0, 1);
        let w = sc.workloads(Power::from_watts_u64(5), sc.horizon());
        assert_eq!(w.len(), 8);
        assert_eq!(w[0].name, "donor");
        assert_eq!(w[7].name, "recipient");
        // Donor demand sits exactly at the margin: initial − ε.
        assert_eq!(w[0].peak_demand(), Power::from_watts_u64(155));
    }
}
