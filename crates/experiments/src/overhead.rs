//! §4.2 — the overhead of running Penelope on a node.
//!
//! The paper runs every NPB application on a single node under a static cap,
//! then again with Penelope's decider and pool running alongside, and
//! reports the percent slowdown: 1.3 % on average. Here the decider/pool
//! daemons are modeled as a configurable fractional slowdown on the
//! application (calibrated to the paper's measurement — see EXPERIMENTS.md);
//! this experiment verifies the end-to-end effect lands where the paper
//! says, including the control loop actually iterating.

use penelope_metrics::TextTable;
use penelope_sim::{ClusterConfig, ClusterSim, SystemKind};
use penelope_units::{Power, SimTime};
use penelope_workload::npb;

use crate::effort::Effort;

/// One application's overhead measurement.
#[derive(Clone, Debug)]
pub struct OverheadRow {
    /// Application name.
    pub app: String,
    /// Runtime under a static cap, seconds.
    pub static_secs: f64,
    /// Runtime with Penelope running, seconds.
    pub penelope_secs: f64,
}

impl OverheadRow {
    /// Percent slowdown of running with Penelope.
    pub fn overhead_pct(&self) -> f64 {
        (self.penelope_secs / self.static_secs - 1.0) * 100.0
    }
}

/// The §4.2 table.
#[derive(Clone, Debug)]
pub struct OverheadResult {
    /// One row per application.
    pub rows: Vec<OverheadRow>,
}

impl OverheadResult {
    /// Mean overhead across applications (paper: ≈1.3 %).
    pub fn mean_overhead_pct(&self) -> f64 {
        self.rows.iter().map(|r| r.overhead_pct()).sum::<f64>() / self.rows.len() as f64
    }

    /// Render as a table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec!["app", "static", "penelope", "overhead"]);
        for r in &self.rows {
            t.row(vec![
                r.app.clone(),
                format!("{:.2}s", r.static_secs),
                format!("{:.2}s", r.penelope_secs),
                format!("{:+.2}%", r.overhead_pct()),
            ]);
        }
        format!(
            "S4.2: Penelope overhead on a single node\n{}mean overhead: {:.2}%\n",
            t.render(),
            self.mean_overhead_pct()
        )
    }
}

/// Run the overhead experiment: one node, 80 W/socket static cap, every
/// NPB application, with and without Penelope.
pub fn run(effort: Effort) -> OverheadResult {
    // Single-node runs are cheap, and time compression distorts this
    // experiment (phases flip faster than the decider can follow), so run
    // at no less than half the class-D length even at low effort.
    let ts = effort.time_scale().max(0.5);
    let budget = Power::from_watts_u64(160);
    let mut rows = Vec::new();
    for app in npb::all_profiles() {
        let app = app.scaled(ts);
        let horizon_secs = app.nominal_runtime_secs() * 10.0 + 30.0;
        let horizon = SimTime::from_nanos((horizon_secs * 1e9) as u64);
        let run_one = |system: SystemKind| -> f64 {
            let cfg = ClusterConfig::paper_defaults(system, budget);
            ClusterSim::new(cfg, vec![app.clone()])
                .run(horizon)
                .runtime_secs()
                .unwrap_or(horizon_secs)
        };
        rows.push(OverheadRow {
            app: app.name.clone(),
            static_secs: run_one(SystemKind::Fair),
            penelope_secs: run_one(SystemKind::Penelope),
        });
    }
    OverheadResult { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_lands_near_paper_value() {
        let r = run(Effort::Smoke);
        assert_eq!(r.rows.len(), 9);
        let mean = r.mean_overhead_pct();
        // The injected daemon cost is 1.3% (the paper's measured value);
        // phase-y apps additionally pay a cap-following cost under our
        // synthetic profiles, so the mean lands slightly above it.
        assert!(
            (0.8..=3.0).contains(&mean),
            "mean overhead {mean}% far from the paper's 1.3%"
        );
        for row in &r.rows {
            assert!(row.overhead_pct() >= 0.0, "{} sped up?!", row.app);
            assert!(row.overhead_pct() < 8.0, "{} overhead too high", row.app);
        }
        assert!(r.render().contains("mean overhead"));
    }
}
