//! §4.5.2 — server service time and saturation extrapolation.
//!
//! The paper measures the central server's per-request processing time at
//! 80–100 µs and, because the server is serial, extrapolates two saturation
//! points: ~12 500 nodes at 1 iteration/s, and ~11.8 iterations/s at 1056
//! nodes. This experiment measures the same quantity from the server-queue
//! model under load and reproduces the arithmetic.

use penelope_metrics::TextTable;
use penelope_slurm::{ServerQueue, ServiceModel};
use penelope_testkit::rng::TestRng;
use penelope_units::{SimDuration, SimTime};

/// The measured service characteristics and the paper's two extrapolations.
#[derive(Clone, Debug)]
pub struct ServiceResult {
    /// Mean measured per-request service time (microseconds).
    pub mean_service_us: f64,
    /// Requests measured.
    pub samples: u64,
    /// Nodes at 1 iteration/s that saturate the serial server.
    pub saturation_nodes_at_1hz: f64,
    /// Iterations/s at 1056 nodes that saturate the server.
    pub saturation_hz_at_1056: f64,
}

impl ServiceResult {
    /// Render the §4.5.2 numbers.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec!["quantity", "value"]);
        t.row(vec![
            "mean service time".to_string(),
            format!("{:.1} us", self.mean_service_us),
        ]);
        t.row(vec![
            "requests measured".to_string(),
            format!("{}", self.samples),
        ]);
        t.row(vec![
            "saturation scale @ 1 Hz".to_string(),
            format!("{:.0} nodes", self.saturation_nodes_at_1hz),
        ]);
        t.row(vec![
            "saturation frequency @ 1056 nodes".to_string(),
            format!("{:.1} Hz", self.saturation_hz_at_1056),
        ]);
        format!("S4.5.2: server service time and saturation\n{}", t.render())
    }
}

/// Drive the server-queue model with a steady request stream and measure
/// realized service times, then extrapolate as the paper does.
pub fn run() -> ServiceResult {
    let mut queue = ServerQueue::new(ServiceModel::default(), 300);
    let mut rng = TestRng::seed_from_u64(0x5E41);
    // Offered load: 2000 requests at 500/s — far below saturation so no
    // queueing distorts the service-time measurement.
    let n = 2000u64;
    for i in 0..n {
        let arrival = SimTime::from_nanos(i * 2_000_000);
        let _ = queue.offer(arrival, &mut rng);
    }
    let stats = queue.stats();
    let mean_service = SimDuration::from_nanos(stats.total_service.as_nanos() / stats.accepted);
    let mean_us = mean_service.as_micros_f64();
    let per_sec = 1.0 / mean_service.as_secs_f64();
    ServiceResult {
        mean_service_us: mean_us,
        samples: stats.accepted,
        saturation_nodes_at_1hz: per_sec,
        saturation_hz_at_1056: per_sec / 1056.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_extrapolations() {
        let r = run();
        // Measured service time within the paper's 80-100 us band.
        assert!(
            (80.0..=100.0).contains(&r.mean_service_us),
            "service {} us",
            r.mean_service_us
        );
        // "a system of 12,500 nodes sending messages every second would
        // force the server to take 1 second to process all requests" — the
        // paper uses the 80 us bound; with the ~90 us mean the figure is
        // ~11.1k. Accept the band.
        assert!(
            (10_000.0..=12_500.0).contains(&r.saturation_nodes_at_1hz),
            "saturation scale {}",
            r.saturation_nodes_at_1hz
        );
        // "at 1056 nodes, a frequency of about 11.8 iterations per second
        // would be enough" (80 us); ~10.5 at the 90 us mean.
        assert!(
            (9.5..=11.9).contains(&r.saturation_hz_at_1056),
            "saturation frequency {}",
            r.saturation_hz_at_1056
        );
        assert_eq!(r.samples, 2000);
        assert!(r.render().contains("S4.5.2"));
    }
}
