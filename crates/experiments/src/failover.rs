//! Extension: SLURM with a standby coordinator (§4.4's future work).
//!
//! The paper acknowledges "centralized systems can use fallback servers to
//! improve their fault-tolerance" but leaves the study for future work.
//! Here it is: the same coordinator-kill scenario as Figure 3, with SLURM
//! given a warm standby (empty cache) that clients fail over to once they
//! notice the primary is gone. The question is how much of the gap to
//! Penelope a fallback actually closes — and what it still costs (the
//! primary's cached power dies with it, every client pays detection
//! latency, and the cluster burns a second reserved node).

use penelope_metrics::{geometric_mean, TextTable};
use penelope_sim::{ClusterSim, FaultScript, SystemKind};
use penelope_units::SimTime;

use crate::effort::Effort;
use crate::scenarios::{pair_subset, pair_workloads, paper_cluster_config};

/// Geomean normalized performance (vs Fair) for the fault scenario.
#[derive(Clone, Debug)]
pub struct FailoverResult {
    /// Plain SLURM with its server killed (the Fig. 3 arm).
    pub slurm: f64,
    /// SLURM with a standby, primary killed.
    pub slurm_failover: f64,
    /// Penelope with one client killed (the Fig. 3 arm).
    pub penelope: f64,
}

impl FailoverResult {
    /// Render as a table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec!["system", "normalized perf (server fault)"]);
        t.row(vec!["SLURM".to_string(), format!("{:.3}", self.slurm)]);
        t.row(vec![
            "SLURM + standby".to_string(),
            format!("{:.3}", self.slurm_failover),
        ]);
        t.row(vec![
            "Penelope".to_string(),
            format!("{:.3}", self.penelope),
        ]);
        format!(
            "Extension (S4.4 future work): a fallback coordinator under the Fig. 3 fault\n{}",
            t.render()
        )
    }
}

/// Run the comparison at one cap (70 W/socket) across the effort's pairs.
pub fn run(effort: Effort) -> FailoverResult {
    let pairs = pair_subset(effort.pairs());
    let nodes = effort.cluster_nodes();
    let ts = effort.time_scale();
    let cap = 70u64;
    let mut slurm_n = Vec::new();
    let mut failover_n = Vec::new();
    let mut pen_n = Vec::new();
    for (pi, pair) in pairs.iter().enumerate() {
        let seed = 0xFA11 ^ pi as u64;
        let fair = crate::nominal::run_cell(SystemKind::Fair, cap, pair, nodes, ts, seed);
        let fault_at = SimTime::from_nanos((fair * 0.25 * 1e9) as u64);
        let horizon_secs = fair * 12.0 + 30.0;
        let horizon = SimTime::from_nanos((horizon_secs * 1e9) as u64);

        let run_slurm = |backup: bool| -> f64 {
            let mut cfg = paper_cluster_config(SystemKind::Slurm, cap, nodes, seed);
            cfg.backup_server = backup;
            let workloads = pair_workloads(&pair.0, &pair.1, nodes, ts);
            let mut sim = ClusterSim::new(cfg, workloads);
            sim.install_faults(&FaultScript::kill_server_at(fault_at));
            sim.run(horizon).runtime_secs().unwrap_or(horizon_secs)
        };
        slurm_n.push(fair / run_slurm(false));
        failover_n.push(fair / run_slurm(true));
        pen_n.push(
            fair / crate::faulty::run_faulty_cell(
                SystemKind::Penelope,
                cap,
                pair,
                nodes,
                ts,
                seed,
                fair,
            ),
        );
    }
    FailoverResult {
        slurm: geometric_mean(&slurm_n),
        slurm_failover: geometric_mean(&failover_n),
        penelope: geometric_mean(&pen_n),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standby_recovers_much_of_the_fault_damage() {
        let r = run(Effort::Smoke);
        assert!(
            r.slurm_failover > r.slurm,
            "the standby did not help: {:.3} vs {:.3}",
            r.slurm_failover,
            r.slurm
        );
        // But Penelope needs no standby node at all and still competes.
        assert!(
            r.penelope >= r.slurm,
            "penelope {:.3} below plain faulty slurm {:.3}",
            r.penelope,
            r.slurm
        );
        assert!(r.render().contains("fallback coordinator"));
    }
}
