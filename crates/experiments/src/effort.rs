//! Experiment sizing.

/// How much of the paper's full experimental matrix to run.
///
/// The full matrix (36 pairs × 5 caps × 3 systems for Fig. 2; 1056
/// simulated nodes for the scale study) takes minutes; tests and criterion
/// benches use the smaller presets. All presets exercise the same code and
/// the same qualitative comparisons — only sample counts shrink.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Effort {
    /// A handful of pairs, small clusters; seconds. Used by unit tests.
    Smoke,
    /// Enough samples for stable shapes; used by the criterion benches.
    Quick,
    /// The paper's full matrix.
    Full,
}

impl Effort {
    /// How many of the 36 application pairs to sweep.
    pub fn pairs(self) -> usize {
        match self {
            Effort::Smoke => 3,
            Effort::Quick => 12,
            Effort::Full => 36,
        }
    }

    /// Time-compression factor applied to profile work (1.0 = class-D
    /// length runs).
    pub fn time_scale(self) -> f64 {
        match self {
            Effort::Smoke => 0.08,
            Effort::Quick => 0.5,
            Effort::Full => 1.0,
        }
    }

    /// Client nodes for the real-cluster experiments (the paper uses 20).
    pub fn cluster_nodes(self) -> usize {
        match self {
            Effort::Smoke => 6,
            Effort::Quick => 20,
            Effort::Full => 20,
        }
    }

    /// The largest scale point in the scale study (the paper simulates up
    /// to 1056 nodes).
    pub fn max_scale_nodes(self) -> usize {
        match self {
            Effort::Smoke => 96,
            Effort::Quick => 1056,
            Effort::Full => 1056,
        }
    }

    /// Parse an effort name: `smoke`, `quick` or `full`.
    pub fn parse(v: &str) -> Result<Self, String> {
        match v {
            "smoke" => Ok(Effort::Smoke),
            "quick" => Ok(Effort::Quick),
            "full" => Ok(Effort::Full),
            other => Err(format!(
                "PENELOPE_EFFORT must be one of smoke|quick|full, got {other:?}"
            )),
        }
    }

    /// Read the `PENELOPE_EFFORT` environment variable (`smoke|quick|full`).
    /// Unset means `Quick`; anything else panics with the offending value —
    /// a typo must not silently downgrade a full-matrix run.
    pub fn from_env() -> Self {
        match std::env::var("PENELOPE_EFFORT") {
            Ok(v) => Self::parse(&v).unwrap_or_else(|e| panic!("{e}")),
            Err(std::env::VarError::NotPresent) => Effort::Quick,
            Err(std::env::VarError::NotUnicode(v)) => {
                panic!("PENELOPE_EFFORT must be one of smoke|quick|full, got non-unicode {v:?}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered() {
        assert!(Effort::Smoke.pairs() < Effort::Quick.pairs());
        assert!(Effort::Quick.pairs() < Effort::Full.pairs());
        assert_eq!(Effort::Quick.max_scale_nodes(), 1056);
        assert_eq!(Effort::Full.pairs(), 36);
        assert_eq!(Effort::Full.cluster_nodes(), 20);
        assert_eq!(Effort::Full.max_scale_nodes(), 1056);
        assert_eq!(Effort::Full.time_scale(), 1.0);
    }

    #[test]
    fn parse_accepts_all_three_names_and_rejects_the_rest() {
        assert_eq!(Effort::parse("smoke"), Ok(Effort::Smoke));
        assert_eq!(Effort::parse("quick"), Ok(Effort::Quick));
        assert_eq!(Effort::parse("full"), Ok(Effort::Full));
        let err = Effort::parse("fulll").expect_err("typo must not parse");
        assert!(err.contains("fulll"), "error must name the value: {err}");
        assert!(Effort::parse("").is_err());
        assert!(Effort::parse("Smoke").is_err(), "names are lowercase");
    }
}
