//! Experiment sizing.

/// How much of the paper's full experimental matrix to run.
///
/// The full matrix (36 pairs × 5 caps × 3 systems for Fig. 2; 1056
/// simulated nodes for the scale study) takes minutes; tests and criterion
/// benches use the smaller presets. All presets exercise the same code and
/// the same qualitative comparisons — only sample counts shrink.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Effort {
    /// A handful of pairs, small clusters; seconds. Used by unit tests.
    Smoke,
    /// Enough samples for stable shapes; used by the criterion benches.
    Quick,
    /// The paper's full matrix.
    Full,
}

impl Effort {
    /// How many of the 36 application pairs to sweep.
    pub fn pairs(self) -> usize {
        match self {
            Effort::Smoke => 3,
            Effort::Quick => 12,
            Effort::Full => 36,
        }
    }

    /// Time-compression factor applied to profile work (1.0 = class-D
    /// length runs).
    pub fn time_scale(self) -> f64 {
        match self {
            Effort::Smoke => 0.08,
            Effort::Quick => 0.5,
            Effort::Full => 1.0,
        }
    }

    /// Client nodes for the real-cluster experiments (the paper uses 20).
    pub fn cluster_nodes(self) -> usize {
        match self {
            Effort::Smoke => 6,
            Effort::Quick => 20,
            Effort::Full => 20,
        }
    }

    /// The largest scale point in the scale study (the paper simulates up
    /// to 1056 nodes).
    pub fn max_scale_nodes(self) -> usize {
        match self {
            Effort::Smoke => 96,
            Effort::Quick => 1056,
            Effort::Full => 1056,
        }
    }

    /// Parse from the `PENELOPE_EFFORT` environment variable
    /// (`smoke|quick|full`), defaulting to `Quick`.
    pub fn from_env() -> Self {
        match std::env::var("PENELOPE_EFFORT").as_deref() {
            Ok("smoke") => Effort::Smoke,
            Ok("full") => Effort::Full,
            _ => Effort::Quick,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered() {
        assert!(Effort::Smoke.pairs() < Effort::Quick.pairs());
        assert!(Effort::Quick.pairs() < Effort::Full.pairs());
        assert_eq!(Effort::Quick.max_scale_nodes(), 1056);
        assert_eq!(Effort::Full.pairs(), 36);
        assert_eq!(Effort::Full.cluster_nodes(), 20);
        assert_eq!(Effort::Full.max_scale_nodes(), 1056);
        assert_eq!(Effort::Full.time_scale(), 1.0);
    }
}
