//! The mega-scale sweep: sharded runs at 10^5–10^6 nodes.
//!
//! The paper's scale study (§4.5) stops at 1056 simulated nodes because
//! the straight-line simulator walks every node every protocol period.
//! This sweep drives the sharded engine ([`ShardedSim`]) instead, whose
//! quiescent-tick elision makes the per-period cost proportional to the
//! *active* minority only, and sweeps node counts two to four orders of
//! magnitude beyond the paper.
//!
//! Each cell is one [`ShardedConfig::mega`] scenario: a 1-in-64 hungry
//! minority sustains request/grant/ack traffic against a donor majority
//! that sheds once and quiesces at the margin. Cells derive their seeds
//! from their position in the axis, so the sweep is deterministic, and
//! — because the sharded schedule is shard-count and thread-count
//! invariant by construction — `PENELOPE_SHARDS` may be set freely
//! without changing a single row.

use penelope_sim::{ShardReport, ShardedConfig, ShardedSim};

use crate::effort::Effort;
use crate::parallel::{self, CellStats};

/// Master seed the sweep derives per-cell seeds from.
pub const MEGA_SEED: u64 = 0x4d45_4741; // "MEGA"

/// The node-count axis for one effort preset. Smoke (CI) stops at 10^5;
/// the full preset reaches the 10^6-node headline point.
pub fn node_axis(effort: Effort) -> Vec<usize> {
    match effort {
        Effort::Smoke => vec![100_000],
        Effort::Quick => vec![100_000, 300_000],
        Effort::Full => vec![100_000, 300_000, 1_000_000],
    }
}

/// Protocol periods simulated per cell. Enough to amortize the one-off
/// engine construction cost and reach the drained-pool steady state.
pub fn periods(effort: Effort) -> u64 {
    match effort {
        Effort::Smoke => 250,
        Effort::Quick => 250,
        Effort::Full => 300,
    }
}

/// One sweep point: a node count and the sharded run's report.
#[derive(Clone, Debug, PartialEq)]
pub struct MegaRow {
    /// Cluster size of this cell.
    pub n_nodes: usize,
    /// Shards the run was partitioned into.
    pub shards: usize,
    /// Events the engine actually executed (ticks, deliveries, expiries).
    pub executed_events: u64,
    /// Provably-idle ticks elided (still protocol work, done in O(1)).
    pub elided_ticks: u64,
    /// Peer messages delivered.
    pub messages: u64,
    /// Order-insensitive digest of every node's inputs and final state;
    /// equal across shard counts and thread counts for the same seed.
    pub fingerprint: u64,
}

/// The whole sweep: typed rows plus the aggregate cell statistics the
/// perf harness turns into events/sec.
#[derive(Clone, Debug, PartialEq)]
pub struct MegaSweep {
    /// One row per node-count axis point.
    pub rows: Vec<MegaRow>,
    /// Aggregate work done (events include elided ticks; sim seconds are
    /// virtual protocol time).
    pub stats: CellStats,
}

/// Build the cell configuration for axis point `i` at `n_nodes`.
///
/// Shard count comes from `PENELOPE_SHARDS` when set, else one shard per
/// 32 768 nodes (at least 2, at most 16) — enough partitioning that even
/// the CI smoke point exercises the cross-shard exchange path, without
/// drowning small cells in barrier overhead.
pub fn cell_config(effort: Effort, i: usize, n_nodes: usize) -> ShardedConfig {
    let mut cfg = ShardedConfig::mega(n_nodes, periods(effort), MEGA_SEED ^ (i as u64) << 32);
    cfg.shards = ShardedConfig::shards_from_env()
        .unwrap_or_else(|| (n_nodes / 32_768).clamp(2, 16))
        .min(n_nodes);
    cfg
}

fn run_cell(effort: Effort, i: usize, n_nodes: usize) -> (MegaRow, f64) {
    let cfg = cell_config(effort, i, n_nodes);
    let sim_secs = cfg.periods as f64 * cfg.node.decider.period.as_secs_f64();
    let report: ShardReport = ShardedSim::new(cfg).run();
    assert!(
        report.conservation_ok,
        "mega cell n={n_nodes} violated power conservation"
    );
    (
        MegaRow {
            n_nodes,
            shards: report.shards,
            executed_events: report.executed_events,
            elided_ticks: report.elided_ticks,
            messages: report.messages,
            fingerprint: report.fingerprint,
        },
        sim_secs,
    )
}

/// Run the mega sweep over `nodes` with an explicit cell worker count.
///
/// `jobs` parallelizes *cells*; within a cell the sharded engine runs
/// serially (its own `jobs` stays 1) so the two layers of parallelism
/// never nest. Rows are bit-identical for every `jobs` value.
pub fn mega_sweep_with_jobs(effort: Effort, nodes: &[usize], jobs: usize) -> MegaSweep {
    let cells: Vec<(usize, usize)> = nodes.iter().copied().enumerate().collect();
    let outcomes = parallel::par_map(jobs, &cells, |&(i, n)| run_cell(effort, i, n));
    let mut stats = CellStats::default();
    let mut rows = Vec::with_capacity(outcomes.len());
    for (row, sim_secs) in outcomes {
        stats.absorb(row.executed_events + row.elided_ticks, sim_secs);
        rows.push(row);
    }
    MegaSweep { rows, stats }
}

/// Run the mega sweep with the worker count from `PENELOPE_JOBS`.
pub fn mega_sweep(effort: Effort, nodes: &[usize]) -> MegaSweep {
    mega_sweep_with_jobs(effort, nodes, parallel::jobs_from_env())
}

#[cfg(test)]
mod tests {
    use super::*;

    // Small axis so the suite stays fast; the real 10^5+ points run in
    // the perf harness and the CI scale job.
    const TEST_NODES: [usize; 2] = [2_048, 4_096];

    #[test]
    fn mega_sweep_rows_conserve_and_mostly_elide() {
        let sweep = mega_sweep_with_jobs(Effort::Smoke, &TEST_NODES, 1);
        assert_eq!(sweep.rows.len(), 2);
        assert_eq!(sweep.stats.cells, 2);
        for row in &sweep.rows {
            // The donor majority (63 of every 64 nodes) must be elided
            // most of the time or the scaling story is broken.
            let slots = row.n_nodes as u64 * periods(Effort::Smoke);
            assert!(
                row.elided_ticks > slots / 2,
                "n={}: only {} of {} tick slots elided",
                row.n_nodes,
                row.elided_ticks,
                slots
            );
            assert!(row.messages > 0, "n={}: no protocol traffic", row.n_nodes);
            assert!(
                row.executed_events + row.elided_ticks >= slots,
                "every node ticks every period, executed or elided"
            );
        }
        // Events scale with the axis, so the larger cell dominates.
        assert!(sweep.rows[1].elided_ticks > sweep.rows[0].elided_ticks);
    }

    #[test]
    fn parallel_cells_match_serial_bitwise() {
        let serial = mega_sweep_with_jobs(Effort::Smoke, &TEST_NODES, 1);
        let par = mega_sweep_with_jobs(Effort::Smoke, &TEST_NODES, 4);
        assert_eq!(serial, par);
    }

    #[test]
    fn cell_seeds_differ_across_the_axis() {
        let a = cell_config(Effort::Smoke, 0, 1024).seed;
        let b = cell_config(Effort::Smoke, 1, 1024).seed;
        assert_ne!(a, b);
    }
}
