//! Extension — performance under node churn (crash *and* rejoin).
//!
//! Figure 3 measures Penelope with a node permanently lost. Real clusters
//! reboot: the crashed node comes back minutes later and must rejoin the
//! peer-to-peer protocol without a coordinator to re-admit it. This
//! experiment runs the Figure-2 matrix with one node killed at 25 % of the
//! Fair runtime and restarted at 50 %, re-admitted at its initial cap out
//! of the lost-power ledger. The metric is *retention*: churned makespan
//! performance as a fraction of the fault-free Penelope run. Timeout-driven
//! suspicion keeps the survivors from burning periods on the dead peer,
//! and the restarted node's urgency path pulls it back toward its fair
//! share, so retention should stay close to 1.

use penelope_metrics::{geometric_mean, TextTable};
use penelope_sim::{ClusterSim, FaultScript, SystemKind};
use penelope_units::{NodeId, SimTime};
use penelope_workload::Profile;

use crate::effort::Effort;
use crate::nominal::{CellOutcome, PAPER_CAPS_W};
use crate::parallel::{self, CellStats};
use crate::scenarios::{pair_subset, pair_workloads, paper_cluster_config};

/// One row of the churn table.
#[derive(Clone, Debug, PartialEq)]
pub struct ChurnRow {
    /// Initial powercap per socket (watts).
    pub per_socket_cap_w: u64,
    /// Geomean normalized performance, fault-free Penelope.
    pub nominal: f64,
    /// Geomean normalized performance with one node crash/restarted.
    pub churned: f64,
}

/// The whole experiment.
#[derive(Clone, Debug, PartialEq)]
pub struct ChurnResult {
    /// One row per initial cap.
    pub rows: Vec<ChurnRow>,
    /// Overall geomean, fault-free.
    pub overall_nominal: f64,
    /// Overall geomean, churned.
    pub overall_churned: f64,
}

impl ChurnResult {
    /// Churned performance as a fraction of fault-free performance.
    pub fn retention(&self) -> f64 {
        self.overall_churned / self.overall_nominal
    }

    /// Render the experiment as a table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec!["cap/socket", "nominal", "churned"]);
        for r in &self.rows {
            t.row(vec![
                format!("{}W", r.per_socket_cap_w),
                format!("{:.3}", r.nominal),
                format!("{:.3}", r.churned),
            ]);
        }
        t.row(vec![
            "overall".to_string(),
            format!("{:.3}", self.overall_nominal),
            format!("{:.3}", self.overall_churned),
        ]);
        format!(
            "Churn tolerance: crash at 25%, rejoin at 50% of Fair runtime (normalized to Fair)\n{}\
             Performance retained under churn: {:.1}%\n",
            t.render(),
            self.retention() * 100.0
        )
    }
}

/// Run one churned cell: the last node is killed at 25 % of the Fair
/// runtime and restarted at 50 %. Returns the raw measurements.
pub fn run_churn_cell_outcome(
    per_socket_cap_w: u64,
    pair: &(Profile, Profile),
    nodes: usize,
    time_scale: f64,
    seed: u64,
    fair_runtime_secs: f64,
) -> CellOutcome {
    let cfg = paper_cluster_config(SystemKind::Penelope, per_socket_cap_w, nodes, seed);
    let workloads = pair_workloads(&pair.0, &pair.1, nodes, time_scale);
    let longest = workloads
        .iter()
        .map(|w| w.nominal_runtime_secs())
        .fold(0.0, f64::max);
    let horizon_secs = longest * 12.0 + 30.0;
    let horizon = SimTime::from_nanos((horizon_secs * 1e9) as u64);
    let kill_at = SimTime::from_nanos((fair_runtime_secs * 0.25 * 1e9) as u64);
    let restart_at = SimTime::from_nanos((fair_runtime_secs * 0.50 * 1e9) as u64);
    let mut sim = ClusterSim::new(cfg, workloads);
    sim.install_faults(&FaultScript::kill_restart(
        NodeId::new(nodes as u32 - 1),
        kill_at,
        restart_at,
    ));
    let report = sim.run(horizon);
    CellOutcome {
        runtime_s: report.runtime_secs().unwrap_or(horizon_secs),
        events: report.events,
        sim_secs: report.ended_at.as_secs_f64(),
    }
}

/// Run one churned cell and return just the makespan in seconds.
pub fn run_churn_cell(
    per_socket_cap_w: u64,
    pair: &(Profile, Profile),
    nodes: usize,
    time_scale: f64,
    seed: u64,
    fair_runtime_secs: f64,
) -> f64 {
    run_churn_cell_outcome(
        per_socket_cap_w,
        pair,
        nodes,
        time_scale,
        seed,
        fair_runtime_secs,
    )
    .runtime_s
}

/// Run the full churn matrix.
pub fn run(effort: Effort) -> ChurnResult {
    run_with_caps(effort, &PAPER_CAPS_W)
}

/// Run the churn experiment for a custom cap list, parallel across
/// `PENELOPE_JOBS` workers (default: all cores).
pub fn run_with_caps(effort: Effort, caps: &[u64]) -> ChurnResult {
    run_with_caps_jobs(effort, caps, parallel::jobs_from_env()).0
}

/// Run the churn matrix with an explicit worker count. One fan-out cell
/// per (cap, pair): the Fair reference, the fault-free Penelope run and
/// the churned run share a seed and the kill/restart schedule depends
/// only on the Fair makespan computed inside the same cell, so cells are
/// independent and the parallel matrix is identical to the serial one.
/// The returned [`CellStats`] carry the event/virtual-time totals for the
/// perf harness (all three sims of each cell included).
pub fn run_with_caps_jobs(effort: Effort, caps: &[u64], jobs: usize) -> (ChurnResult, CellStats) {
    let pairs = pair_subset(effort.pairs());
    let nodes = effort.cluster_nodes();
    let ts = effort.time_scale();
    let mut cells = Vec::with_capacity(caps.len() * pairs.len());
    for &cap in caps {
        for (pi, pair) in pairs.iter().enumerate() {
            let seed = (cap << 8) ^ pi as u64 ^ 0xC4A2;
            cells.push((cap, pair, seed));
        }
    }
    let outcomes = parallel::par_map_adaptive(jobs, &cells, |&(cap, pair, seed)| {
        let fair = crate::nominal::run_cell_outcome(SystemKind::Fair, cap, pair, nodes, ts, seed);
        let nominal =
            crate::nominal::run_cell_outcome(SystemKind::Penelope, cap, pair, nodes, ts, seed);
        let churned = run_churn_cell_outcome(cap, pair, nodes, ts, seed, fair.runtime_s);
        (fair, nominal, churned)
    });
    let mut stats = CellStats::default();
    for (fair, nominal, churned) in &outcomes {
        for o in [fair, nominal, churned] {
            stats.absorb(o.events, o.sim_secs);
        }
    }

    let mut rows = Vec::with_capacity(caps.len());
    let mut all_nominal = Vec::new();
    let mut all_churned = Vec::new();
    for (ci, &cap) in caps.iter().enumerate() {
        let chunk = &outcomes[ci * pairs.len()..(ci + 1) * pairs.len()];
        let nominal_norm: Vec<f64> = chunk
            .iter()
            .map(|(fair, nominal, _)| fair.runtime_s / nominal.runtime_s)
            .collect();
        let churned_norm: Vec<f64> = chunk
            .iter()
            .map(|(fair, _, churned)| fair.runtime_s / churned.runtime_s)
            .collect();
        all_nominal.extend_from_slice(&nominal_norm);
        all_churned.extend_from_slice(&churned_norm);
        rows.push(ChurnRow {
            per_socket_cap_w: cap,
            nominal: geometric_mean(&nominal_norm),
            churned: geometric_mean(&churned_norm),
        });
    }
    (
        ChurnResult {
            rows,
            overall_nominal: geometric_mean(&all_nominal),
            overall_churned: geometric_mean(&all_churned),
        },
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejoin_retains_most_of_the_fault_free_performance() {
        let r = run_with_caps(Effort::Smoke, &[60]);
        assert!(
            r.retention() > 0.5,
            "churned run retained only {:.1}% of fault-free performance",
            r.retention() * 100.0
        );
        assert!(
            r.retention() <= 1.05,
            "churn cannot beat fault-free by more than jitter: {:.3}",
            r.retention()
        );
        assert!(r.render().contains("Churn tolerance"));
    }

    #[test]
    fn parallel_matrix_matches_serial() {
        let (serial, serial_stats) = run_with_caps_jobs(Effort::Smoke, &[60], 1);
        let (parallel, parallel_stats) = run_with_caps_jobs(Effort::Smoke, &[60], 4);
        assert_eq!(serial, parallel);
        assert_eq!(serial_stats, parallel_stats);
        assert_eq!(serial_stats.cells, Effort::Smoke.pairs() * 3);
        assert!(serial_stats.events > 0);
    }
}
