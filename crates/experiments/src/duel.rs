//! The decider duel: urgency vs predictive vs market on identical traces.
//!
//! The `DeciderPolicy` seam makes the tick-time request/shed logic
//! swappable while the shared engine (escrow, suspicion, gossip,
//! seq/epochs) stays fixed. This experiment asks the question that seam
//! exists for: *given the same cluster, the same seeded diurnal workload
//! and the same budget, which policy wins?* Every policy runs on
//! bit-identical inputs — same seed, same [`penelope_workload::diurnal`]
//! profiles, same `ClusterConfig` apart from `decider.policy` — so any
//! difference in the scoreboard is the policy, not the draw.
//!
//! Scored per policy:
//!
//! * **turnaround** — mean request→grant round trip, from the
//!   `RequestSent`/`GrantApplied` event stream (lower is better);
//! * **Jain fairness** — Jain's index over each node's integrated cap
//!   (Σ cap·Δt), from `CapActuated` events (higher is better);
//! * **makespan** — when the last workload finished (lower is better).
//!
//! Non-vacuity evidence rides along: the market leg must actually place
//! bids (`BidPlaced` events) and the predictive leg's jump detector must
//! actually fire on a diurnal swing (`ForecastJump` events); a duel where
//! the challengers silently degenerate to urgency proves nothing.

use std::sync::Arc;

use penelope_core::DeciderPolicy;
use penelope_metrics::{jain_from_events, turnaround_from_events, TextTable};
use penelope_sim::{ClusterSim, SystemKind};
use penelope_trace::{EventKind, RingBufferObserver, SharedObserver};
use penelope_units::SimTime;
use penelope_workload::diurnal::{self, DiurnalConfig};

use crate::effort::Effort;
use crate::scenarios::paper_cluster_config;

/// The three contenders, in fixed report order.
pub fn contenders() -> [DeciderPolicy; 3] {
    [
        DeciderPolicy::Urgency,
        DeciderPolicy::Predictive(Default::default()),
        DeciderPolicy::Market(Default::default()),
    ]
}

/// One policy's scoreboard line.
#[derive(Clone, Debug, PartialEq)]
pub struct DuelEntry {
    /// The policy that produced this line.
    pub policy: DeciderPolicy,
    /// Mean request→grant turnaround in milliseconds (`None`: the run
    /// never completed a request round trip).
    pub mean_turnaround_ms: Option<f64>,
    /// Completed request round trips.
    pub grants: usize,
    /// Fraction of requests that never saw a grant.
    pub unanswered_fraction: f64,
    /// Jain's index over integrated per-node caps (`None`: no caps were
    /// ever actuated, which would mean a broken run).
    pub jain: Option<f64>,
    /// Makespan in seconds (`None`: some workload never finished inside
    /// the horizon).
    pub makespan_secs: Option<f64>,
    /// `BidPlaced` events (non-zero exactly when the market leg bid).
    pub bids: u64,
    /// `ForecastJump` events (the predictive jump detector firing).
    pub forecast_jumps: u64,
    /// Discrete events the simulator processed for this leg (perf-harness
    /// throughput numerator).
    pub sim_events: u64,
    /// Simulated seconds the leg covered (perf-harness sim/wall ratio).
    pub sim_secs: f64,
}

/// The duel scoreboard: one entry per policy, identical inputs.
#[derive(Clone, Debug, PartialEq)]
pub struct DuelResult {
    /// Scoreboard lines, in [`contenders`] order.
    pub entries: Vec<DuelEntry>,
    /// Cluster size every leg ran at.
    pub nodes: usize,
    /// The shared seed.
    pub seed: u64,
}

impl DuelResult {
    /// The policy with the lowest mean turnaround (entries without one
    /// lose automatically).
    pub fn winner_by_turnaround(&self) -> &DuelEntry {
        self.entries
            .iter()
            .min_by(|a, b| {
                let ka = a.mean_turnaround_ms.unwrap_or(f64::INFINITY);
                let kb = b.mean_turnaround_ms.unwrap_or(f64::INFINITY);
                ka.total_cmp(&kb)
            })
            .expect("non-empty duel")
    }

    /// The policy with the highest Jain index.
    pub fn winner_by_fairness(&self) -> &DuelEntry {
        self.entries
            .iter()
            .max_by(|a, b| {
                let ka = a.jain.unwrap_or(f64::NEG_INFINITY);
                let kb = b.jain.unwrap_or(f64::NEG_INFINITY);
                ka.total_cmp(&kb)
            })
            .expect("non-empty duel")
    }

    /// Render the winner table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "policy",
            "turnaround (ms)",
            "unanswered",
            "Jain",
            "makespan (s)",
            "bids",
            "jumps",
        ]);
        for e in &self.entries {
            t.row(vec![
                e.policy.name().to_string(),
                e.mean_turnaround_ms
                    .map_or_else(|| "-".into(), |v| format!("{v:.2}")),
                format!("{:.1}%", e.unanswered_fraction * 100.0),
                e.jain.map_or_else(|| "-".into(), |v| format!("{v:.4}")),
                e.makespan_secs
                    .map_or_else(|| "-".into(), |v| format!("{v:.2}")),
                format!("{}", e.bids),
                format!("{}", e.forecast_jumps),
            ]);
        }
        format!(
            "Decider duel ({} nodes, seed {:#x}, identical diurnal workloads)\n{}\nwinner by turnaround: {}   winner by fairness: {}\n",
            self.nodes,
            self.seed,
            t.render(),
            self.winner_by_turnaround().policy.name(),
            self.winner_by_fairness().policy.name(),
        )
    }
}

/// The diurnal workload family one duel runs on, sized by effort: the
/// day is compressed by the effort's time scale so smoke runs stay
/// test-sized while the swing (trough→peak ratio, slots per day) is
/// identical at every effort.
pub fn diurnal_config(effort: Effort, seed: u64) -> DiurnalConfig {
    DiurnalConfig {
        seed,
        day_secs: 60.0 * effort.time_scale(),
        ..DiurnalConfig::default()
    }
}

/// Run one policy leg on the shared inputs and fold its scoreboard line.
pub fn run_policy(policy: DeciderPolicy, effort: Effort, seed: u64) -> DuelEntry {
    let nodes = effort.cluster_nodes();
    let profiles = diurnal::cluster(&diurnal_config(effort, seed), nodes);
    let mut cfg = paper_cluster_config(SystemKind::Penelope, 70, nodes, seed);
    cfg.node.decider.policy = policy;
    let ring = Arc::new(RingBufferObserver::unbounded());
    cfg.observer = SharedObserver::from(ring.clone());

    // Diurnal demand routinely exceeds a 140 W cap, so runs stretch well
    // past nominal; give every policy the same generous horizon.
    let nominal = profiles
        .iter()
        .map(|p| p.nominal_runtime_secs())
        .fold(0.0, f64::max);
    let horizon_secs = nominal * 12.0 + 30.0;
    let horizon = SimTime::from_nanos((horizon_secs * 1e9) as u64);

    let report = ClusterSim::new(cfg, profiles).run(horizon);
    let events = ring.events();
    // Integrate cap shares to when the cluster went quiet, not the padded
    // horizon: after the last workload finishes, caps are static and
    // equalized tails would wash out real mid-run unfairness.
    let share_horizon = report
        .runtime_secs()
        .map_or(horizon, |s| SimTime::from_nanos((s * 1e9) as u64));

    let turnaround = turnaround_from_events(&events);
    let count_kind = |tag: usize| events.iter().filter(|e| e.kind.tag() == tag).count() as u64;
    DuelEntry {
        policy,
        mean_turnaround_ms: turnaround.mean().map(|d| d.as_secs_f64() * 1e3),
        grants: turnaround.count(),
        unanswered_fraction: turnaround.unanswered_fraction(),
        jain: jain_from_events(&events, share_horizon),
        makespan_secs: report.runtime_secs(),
        sim_events: report.events,
        sim_secs: report.ended_at.as_secs_f64(),
        bids: count_kind(
            EventKind::BidPlaced {
                seq: 0,
                bid: penelope_units::Power::ZERO,
            }
            .tag(),
        ),
        forecast_jumps: count_kind(
            EventKind::ForecastJump {
                forecast: penelope_units::Power::ZERO,
                reading: penelope_units::Power::ZERO,
            }
            .tag(),
        ),
    }
}

/// Run the full duel: every contender on identical seeded inputs.
pub fn run(effort: Effort) -> DuelResult {
    run_seeded(effort, 0x00E1_0DE1)
}

/// [`run`] with an explicit seed (the CI job pins one so the winner table
/// artifact is reproducible).
pub fn run_seeded(effort: Effort, seed: u64) -> DuelResult {
    let entries = contenders()
        .into_iter()
        .map(|p| run_policy(p, effort, seed))
        .collect();
    DuelResult {
        entries,
        nodes: effort.cluster_nodes(),
        seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duel_runs_all_three_policies_on_identical_inputs() {
        let r = run_seeded(Effort::Smoke, 0xD0E1);
        assert_eq!(r.entries.len(), 3);
        assert_eq!(r.entries[0].policy.name(), "urgency");
        assert_eq!(r.entries[1].policy.name(), "predictive");
        assert_eq!(r.entries[2].policy.name(), "market");
        for e in &r.entries {
            assert!(e.jain.is_some(), "{}: no caps actuated", e.policy.name());
            let j = e.jain.unwrap();
            assert!((0.0..=1.0 + 1e-9).contains(&j), "{j}");
            assert!(e.grants > 0, "{}: no grants completed", e.policy.name());
        }
    }

    #[test]
    fn challenger_legs_are_not_vacuous() {
        // The duel proves nothing if the market never bids or the
        // predictive jump detector never fires on a diurnal swing.
        let r = run_seeded(Effort::Smoke, 0xD0E2);
        let by_name = |n: &str| {
            r.entries
                .iter()
                .find(|e| e.policy.name() == n)
                .expect("entry")
        };
        assert!(by_name("market").bids > 0, "market leg placed no bids");
        assert!(
            by_name("predictive").forecast_jumps > 0,
            "predictive leg never snapped its forecast"
        );
        // And the control legs must stay clean: urgency neither bids nor
        // forecasts.
        assert_eq!(by_name("urgency").bids, 0);
        assert_eq!(by_name("urgency").forecast_jumps, 0);
    }

    #[test]
    fn duel_is_deterministic_in_the_seed() {
        let a = run_seeded(Effort::Smoke, 7);
        let b = run_seeded(Effort::Smoke, 7);
        for (x, y) in a.entries.iter().zip(&b.entries) {
            assert_eq!(x.mean_turnaround_ms, y.mean_turnaround_ms);
            assert_eq!(x.jain, y.jain);
            assert_eq!(x.makespan_secs, y.makespan_secs);
            assert_eq!(x.bids, y.bids);
        }
    }

    #[test]
    fn render_names_a_winner() {
        let r = run_seeded(Effort::Smoke, 0xD0E3);
        let s = r.render();
        assert!(s.contains("winner by turnaround"));
        assert!(s.contains("urgency") && s.contains("predictive") && s.contains("market"));
    }
}
