//! Figure 2 — performance under nominal conditions.
//!
//! All three systems run every application pair at each initial powercap
//! (60–100 W per socket); SLURM and Penelope performance (`1/runtime`) is
//! normalized to Fair and aggregated across pairs by geometric mean (§4.3).
//! The paper's headline: the two dynamic systems are nearly equivalent,
//! SLURM ahead by only ~1.8 % on average and never more than 3 %.

use penelope_metrics::{geometric_mean, TextTable};
use penelope_sim::{ClusterSim, SystemKind};
use penelope_units::SimTime;
use penelope_workload::Profile;

use crate::effort::Effort;
use crate::parallel::{self, CellStats};
use crate::scenarios::{pair_subset, pair_workloads, paper_cluster_config};

/// The per-socket caps the paper sweeps (§4.3).
pub const PAPER_CAPS_W: [u64; 5] = [60, 70, 80, 90, 100];

/// One row of Figure 2: geometric-mean normalized performance per system at
/// one initial cap.
#[derive(Clone, Debug, PartialEq)]
pub struct Fig2Row {
    /// Initial powercap per socket (watts).
    pub per_socket_cap_w: u64,
    /// SLURM's geomean normalized performance (Fair = 1.0).
    pub slurm: f64,
    /// Penelope's geomean normalized performance.
    pub penelope: f64,
}

/// The whole figure: per-cap rows plus the across-everything geomean.
#[derive(Clone, Debug, PartialEq)]
pub struct Fig2Result {
    /// One row per initial cap.
    pub rows: Vec<Fig2Row>,
    /// Geomean across all pairs and caps, SLURM.
    pub overall_slurm: f64,
    /// Geomean across all pairs and caps, Penelope.
    pub overall_penelope: f64,
}

impl Fig2Result {
    /// SLURM's mean advantage over Penelope, percent (paper: ≈1.8 %).
    pub fn slurm_advantage_pct(&self) -> f64 {
        (self.overall_slurm / self.overall_penelope - 1.0) * 100.0
    }

    /// Render the figure as a table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec!["cap/socket", "SLURM", "Penelope"]);
        for r in &self.rows {
            t.row(vec![
                format!("{}W", r.per_socket_cap_w),
                format!("{:.3}", r.slurm),
                format!("{:.3}", r.penelope),
            ]);
        }
        t.row(vec![
            "overall".to_string(),
            format!("{:.3}", self.overall_slurm),
            format!("{:.3}", self.overall_penelope),
        ]);
        format!(
            "Figure 2: performance under nominal conditions (normalized to Fair)\n{}\
             SLURM advantage over Penelope: {:+.2}%\n",
            t.render(),
            self.slurm_advantage_pct()
        )
    }
}

/// Raw outcome of one (system, cap, pair) cell.
#[derive(Clone, Debug, PartialEq)]
pub struct CellOutcome {
    /// Makespan in seconds (the horizon when the run stalled).
    pub runtime_s: f64,
    /// Discrete events the simulator processed.
    pub events: u64,
    /// Virtual time simulated, seconds.
    pub sim_secs: f64,
}

/// Run one (system, cap, pair) cell and return its raw measurements.
pub fn run_cell_outcome(
    system: SystemKind,
    per_socket_cap_w: u64,
    pair: &(Profile, Profile),
    nodes: usize,
    time_scale: f64,
    seed: u64,
) -> CellOutcome {
    let cfg = paper_cluster_config(system, per_socket_cap_w, nodes, seed);
    let workloads = pair_workloads(&pair.0, &pair.1, nodes, time_scale);
    // Generous horizon: the slowest app under the tightest cap stretches by
    // a few ×; anything beyond this is a stall and reported as the horizon.
    let longest = workloads
        .iter()
        .map(|w| w.nominal_runtime_secs())
        .fold(0.0, f64::max);
    let horizon_secs = longest * 8.0 + 30.0;
    let horizon = SimTime::from_nanos((horizon_secs * 1e9) as u64);
    let report = ClusterSim::new(cfg, workloads).run(horizon);
    CellOutcome {
        runtime_s: report.runtime_secs().unwrap_or(horizon_secs),
        events: report.events,
        sim_secs: report.ended_at.as_secs_f64(),
    }
}

/// Run one (system, cap, pair) cell and return the makespan in seconds.
pub fn run_cell(
    system: SystemKind,
    per_socket_cap_w: u64,
    pair: &(Profile, Profile),
    nodes: usize,
    time_scale: f64,
    seed: u64,
) -> f64 {
    run_cell_outcome(system, per_socket_cap_w, pair, nodes, time_scale, seed).runtime_s
}

/// Run the full Figure 2 matrix at the given effort.
pub fn run(effort: Effort) -> Fig2Result {
    run_with_caps(effort, &PAPER_CAPS_W)
}

/// Run Figure 2 for a custom cap list (used by tests and benches),
/// parallel across `PENELOPE_JOBS` workers (default: all cores).
pub fn run_with_caps(effort: Effort, caps: &[u64]) -> Fig2Result {
    run_with_caps_jobs(effort, caps, parallel::jobs_from_env()).0
}

/// Run Figure 2 with an explicit worker count. Every (system, cap, pair)
/// cell is independent (its seed depends only on the cap and pair index),
/// so the fanned-out matrix is identical to the serial one; the returned
/// [`CellStats`] carry the event/virtual-time totals for the perf harness.
pub fn run_with_caps_jobs(effort: Effort, caps: &[u64], jobs: usize) -> (Fig2Result, CellStats) {
    const SYSTEMS: [SystemKind; 3] = [SystemKind::Fair, SystemKind::Slurm, SystemKind::Penelope];
    let pairs = pair_subset(effort.pairs());
    let nodes = effort.cluster_nodes();
    let ts = effort.time_scale();
    let mut cells = Vec::with_capacity(caps.len() * pairs.len() * SYSTEMS.len());
    for &cap in caps {
        for (pi, pair) in pairs.iter().enumerate() {
            let seed = (cap << 8) ^ pi as u64;
            for system in SYSTEMS {
                cells.push((system, cap, pair, seed));
            }
        }
    }
    let outcomes = parallel::par_map_adaptive(jobs, &cells, |&(system, cap, pair, seed)| {
        run_cell_outcome(system, cap, pair, nodes, ts, seed)
    });
    let mut stats = CellStats::default();
    for o in &outcomes {
        stats.absorb(o.events, o.sim_secs);
    }

    let mut rows = Vec::with_capacity(caps.len());
    let mut all_slurm = Vec::new();
    let mut all_pen = Vec::new();
    let per_cap = pairs.len() * SYSTEMS.len();
    for (ci, &cap) in caps.iter().enumerate() {
        let chunk = &outcomes[ci * per_cap..(ci + 1) * per_cap];
        let mut slurm_norm = Vec::with_capacity(pairs.len());
        let mut pen_norm = Vec::with_capacity(pairs.len());
        for pi in 0..pairs.len() {
            let fair = chunk[pi * SYSTEMS.len()].runtime_s;
            let slurm = chunk[pi * SYSTEMS.len() + 1].runtime_s;
            let pen = chunk[pi * SYSTEMS.len() + 2].runtime_s;
            slurm_norm.push(fair / slurm);
            pen_norm.push(fair / pen);
        }
        all_slurm.extend_from_slice(&slurm_norm);
        all_pen.extend_from_slice(&pen_norm);
        rows.push(Fig2Row {
            per_socket_cap_w: cap,
            slurm: geometric_mean(&slurm_norm),
            penelope: geometric_mean(&pen_norm),
        });
    }
    (
        Fig2Result {
            rows,
            overall_slurm: geometric_mean(&all_slurm),
            overall_penelope: geometric_mean(&all_pen),
        },
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_matrix_has_paper_shape() {
        // Two caps, smoke effort: dynamic systems at or above Fair under
        // the tight cap, and SLURM ≈ Penelope.
        let r = run_with_caps(Effort::Smoke, &[60, 100]);
        assert_eq!(r.rows.len(), 2);
        let tight = &r.rows[0];
        assert!(
            tight.penelope > 1.0,
            "Penelope below Fair under a tight cap: {}",
            tight.penelope
        );
        assert!(
            tight.slurm > 1.0,
            "SLURM below Fair under a tight cap: {}",
            tight.slurm
        );
        // Near-equivalence: within ±8 % of each other even at smoke effort.
        assert!(
            r.slurm_advantage_pct().abs() < 8.0,
            "advantage {}%",
            r.slurm_advantage_pct()
        );
        let rendered = r.render();
        assert!(rendered.contains("Figure 2"));
        assert!(rendered.contains("overall"));
    }

    #[test]
    fn parallel_matrix_matches_serial() {
        let (serial, serial_stats) = run_with_caps_jobs(Effort::Smoke, &[80], 1);
        let (parallel, parallel_stats) = run_with_caps_jobs(Effort::Smoke, &[80], 4);
        assert_eq!(serial, parallel);
        assert_eq!(serial_stats, parallel_stats);
        assert_eq!(serial_stats.cells, Effort::Smoke.pairs() * 3);
        assert!(serial_stats.events > 0);
    }
}
