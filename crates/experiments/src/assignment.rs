//! Extension: sensitivity to the initial power assignment (§2.2.1).
//!
//! *Power assignment* is one of the paper's two identifying axes of a power
//! manager. All three evaluated systems start from the even split; this
//! experiment asks how much that choice matters: give the cluster a
//! deliberately *inverted* assignment (hungry nodes get the safe floor,
//! modest nodes get the leftovers) and measure how much of the damage each
//! system undoes. Static Fair is stuck with it; the dynamic systems'
//! shifting — and in particular Penelope's urgency, whose whole purpose is
//! returning nodes to a sane cap — should recover most of the loss.

use penelope_metrics::TextTable;
use penelope_sim::{ClusterSim, SystemKind};
use penelope_units::{Power, SimTime};
use penelope_workload::{npb, Profile};

use crate::effort::Effort;
use crate::scenarios::paper_cluster_config;

/// Runtimes for one system under even vs inverted assignments.
#[derive(Clone, Debug)]
pub struct AssignmentRow {
    /// System label.
    pub system: &'static str,
    /// Makespan with the even split, seconds.
    pub even_secs: f64,
    /// Makespan with the inverted assignment, seconds.
    pub inverted_secs: f64,
}

impl AssignmentRow {
    /// Slowdown caused by the bad assignment, percent.
    pub fn penalty_pct(&self) -> f64 {
        (self.inverted_secs / self.even_secs - 1.0) * 100.0
    }
}

/// The experiment result.
#[derive(Clone, Debug)]
pub struct AssignmentResult {
    /// One row per system.
    pub rows: Vec<AssignmentRow>,
}

impl AssignmentResult {
    /// Render as a table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec!["system", "even split", "inverted", "penalty"]);
        for r in &self.rows {
            t.row(vec![
                r.system.to_string(),
                format!("{:.1}s", r.even_secs),
                format!("{:.1}s", r.inverted_secs),
                format!("{:+.1}%", r.penalty_pct()),
            ]);
        }
        format!(
            "Extension (S2.2.1): sensitivity to the initial power assignment\n{}",
            t.render()
        )
    }

    /// The row for a system.
    pub fn row(&self, system: &str) -> &AssignmentRow {
        self.rows
            .iter()
            .find(|r| r.system == system)
            .expect("system present")
    }
}

/// Run the experiment: half DC (modest), half EP (hungry), 70 W/socket
/// even budget; the inverted assignment gives every EP node the 80 W safe
/// floor and hands the freed watts to the DC nodes.
pub fn run(effort: Effort) -> AssignmentResult {
    let nodes = effort.cluster_nodes();
    let ts = effort.time_scale();
    let workloads: Vec<Profile> = (0..nodes / 2)
        .map(|_| npb::dc().scaled(ts))
        .chain((0..nodes - nodes / 2).map(|_| npb::ep().scaled(ts)))
        .collect();
    let per_node = Power::from_watts_u64(140);
    let floor = Power::from_watts_u64(80);
    // Inverted: EP nodes at the floor; DC nodes absorb the difference
    // (clamped by the 300 W ceiling, which 200 W stays well under).
    let spare_per_hungry = per_node - floor;
    let dc_nodes = nodes / 2;
    let ep_nodes = nodes - dc_nodes;
    let dc_extra = spare_per_hungry.mul_f64(ep_nodes as f64 / dc_nodes as f64);
    let inverted: Vec<Power> = (0..nodes)
        .map(|i| {
            if i < dc_nodes {
                per_node + dc_extra
            } else {
                floor
            }
        })
        .collect();

    let horizon_secs = workloads
        .iter()
        .map(|w| w.nominal_runtime_secs())
        .fold(0.0, f64::max)
        * 20.0
        + 30.0;
    let horizon = SimTime::from_nanos((horizon_secs * 1e9) as u64);

    let mut rows = Vec::new();
    for system in [SystemKind::Fair, SystemKind::Slurm, SystemKind::Penelope] {
        let cfg = paper_cluster_config(system, 70, nodes, 0xA551);
        let even = ClusterSim::new(cfg.clone(), workloads.clone())
            .run(horizon)
            .runtime_secs()
            .unwrap_or(horizon_secs);
        let inv = ClusterSim::with_assignments(cfg, workloads.clone(), inverted.clone())
            .run(horizon)
            .runtime_secs()
            .unwrap_or(horizon_secs);
        rows.push(AssignmentRow {
            system: system.label(),
            even_secs: even,
            inverted_secs: inv,
        });
    }
    AssignmentResult { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamic_systems_recover_from_bad_assignments() {
        let r = run(Effort::Smoke);
        let fair = r.row("Fair");
        let pen = r.row("Penelope");
        let slurm = r.row("SLURM");
        // A bad static assignment hurts Fair badly...
        assert!(
            fair.penalty_pct() > 20.0,
            "inverted assignment barely hurt Fair: {:+.1}%",
            fair.penalty_pct()
        );
        // ...while the dynamic systems shift/urgency their way back.
        assert!(
            pen.penalty_pct() < fair.penalty_pct() / 2.0,
            "Penelope did not recover: {:+.1}% vs Fair {:+.1}%",
            pen.penalty_pct(),
            fair.penalty_pct()
        );
        assert!(
            slurm.penalty_pct() < fair.penalty_pct() / 2.0,
            "SLURM did not recover: {:+.1}% vs Fair {:+.1}%",
            slurm.penalty_pct(),
            fair.penalty_pct()
        );
        assert!(r.render().contains("initial power assignment"));
    }
}
