//! The experiment harness: one module per artifact in the paper's
//! evaluation (§4), each producing typed rows and a printable table/series.
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`overhead`] | §4.2 — per-application overhead of running Penelope |
//! | [`nominal`] | Fig. 2 — performance under nominal conditions |
//! | [`faulty`] | Fig. 3 — performance with a coordinator fault |
//! | [`scale`] | Figs. 4–8 — redistribution & turnaround vs frequency/scale |
//! | [`multijob`] | Extension: §4.4's back-to-back-jobs fault prediction |
//! | [`assignment`] | Extension: §2.2.1 initial-assignment sensitivity |
//! | [`failover`] | Extension: §4.4's fallback-coordinator future work |
//! | [`churn`] | Extension: node crash/rejoin tolerance under churn |
//! | [`duel`] | Extension: urgency vs predictive vs market decider duel |
//! | [`scale_mega`] | Extension: sharded scale study at 10^5–10^6 nodes |
//! | [`service`] | §4.5.2 — server service time and saturation extrapolation |
//!
//! Every experiment takes an [`Effort`] knob so the full paper matrix (36
//! application pairs, 5 powercaps, 1056 nodes) and a quick CI-sized subset
//! share one code path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assignment;
pub mod churn;
pub mod duel;
pub mod effort;
pub mod failover;
pub mod faulty;
pub mod multijob;
pub mod nominal;
pub mod overhead;
pub mod parallel;
pub mod scale;
pub mod scale_mega;
pub mod scenarios;
pub mod service;

pub use effort::Effort;
