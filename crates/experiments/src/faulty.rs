//! Figure 3 — performance with faulty power management.
//!
//! The same matrix as Figure 2, but a fault is induced partway through each
//! run: SLURM's central server is killed (§4.4), and Penelope loses one
//! client node (the failure mode it is actually exposed to — it has no
//! coordinator). The paper finds SLURM drops below even Fair while Penelope
//! is not significantly perturbed, giving Penelope an 8–15 % mean advantage.

use penelope_metrics::{geometric_mean, TextTable};
use penelope_sim::{ClusterSim, FaultScript, SystemKind};
use penelope_units::{NodeId, SimTime};
use penelope_workload::Profile;

use crate::effort::Effort;
use crate::nominal::PAPER_CAPS_W;
use crate::scenarios::{pair_subset, pair_workloads, paper_cluster_config};

/// One row of Figure 3.
#[derive(Clone, Debug)]
pub struct Fig3Row {
    /// Initial powercap per socket (watts).
    pub per_socket_cap_w: u64,
    /// SLURM geomean normalized performance with its server killed.
    pub slurm: f64,
    /// Penelope geomean normalized performance with one client killed.
    pub penelope: f64,
}

/// The whole figure.
#[derive(Clone, Debug)]
pub struct Fig3Result {
    /// One row per initial cap.
    pub rows: Vec<Fig3Row>,
    /// Overall geomean, SLURM (faulty).
    pub overall_slurm: f64,
    /// Overall geomean, Penelope (faulty).
    pub overall_penelope: f64,
}

impl Fig3Result {
    /// Penelope's mean advantage over SLURM in percent (paper: 8–15 %).
    pub fn penelope_advantage_pct(&self) -> f64 {
        (self.overall_penelope / self.overall_slurm - 1.0) * 100.0
    }

    /// Render the figure as a table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec!["cap/socket", "SLURM", "Penelope"]);
        for r in &self.rows {
            t.row(vec![
                format!("{}W", r.per_socket_cap_w),
                format!("{:.3}", r.slurm),
                format!("{:.3}", r.penelope),
            ]);
        }
        t.row(vec![
            "overall".to_string(),
            format!("{:.3}", self.overall_slurm),
            format!("{:.3}", self.overall_penelope),
        ]);
        format!(
            "Figure 3: performance under faulty conditions (normalized to Fair)\n{}\
             Penelope advantage over SLURM: {:+.2}%\n",
            t.render(),
            self.penelope_advantage_pct()
        )
    }
}

/// Run one faulty cell: the fault fires at 25 % of the Fair runtime for the
/// same pair/cap. Returns the makespan (over surviving nodes) in seconds.
pub fn run_faulty_cell(
    system: SystemKind,
    per_socket_cap_w: u64,
    pair: &(Profile, Profile),
    nodes: usize,
    time_scale: f64,
    seed: u64,
    fair_runtime_secs: f64,
) -> f64 {
    let cfg = paper_cluster_config(system, per_socket_cap_w, nodes, seed);
    let workloads = pair_workloads(&pair.0, &pair.1, nodes, time_scale);
    let longest = workloads
        .iter()
        .map(|w| w.nominal_runtime_secs())
        .fold(0.0, f64::max);
    let horizon_secs = longest * 12.0 + 30.0;
    let horizon = SimTime::from_nanos((horizon_secs * 1e9) as u64);
    let fault_at = SimTime::from_nanos((fair_runtime_secs * 0.25 * 1e9) as u64);
    let mut sim = ClusterSim::new(cfg, workloads);
    match system {
        SystemKind::Slurm => sim.install_faults(&FaultScript::kill_server_at(fault_at)),
        SystemKind::Penelope => {
            // Penelope has no coordinator; its exposure is an ordinary
            // client failure. Kill the last node (a recipient-side one).
            sim.install_faults(&FaultScript::kill_node_at(
                fault_at,
                NodeId::new(nodes as u32 - 1),
            ));
        }
        SystemKind::Fair => {}
    }
    let report = sim.run(horizon);
    report.runtime_secs().unwrap_or(horizon_secs)
}

/// Run the full Figure 3 matrix.
pub fn run(effort: Effort) -> Fig3Result {
    run_with_caps(effort, &PAPER_CAPS_W)
}

/// Run Figure 3 for a custom cap list.
pub fn run_with_caps(effort: Effort, caps: &[u64]) -> Fig3Result {
    let pairs = pair_subset(effort.pairs());
    let nodes = effort.cluster_nodes();
    let ts = effort.time_scale();
    let mut rows = Vec::with_capacity(caps.len());
    let mut all_slurm = Vec::new();
    let mut all_pen = Vec::new();
    for &cap in caps {
        let mut slurm_norm = Vec::with_capacity(pairs.len());
        let mut pen_norm = Vec::with_capacity(pairs.len());
        for (pi, pair) in pairs.iter().enumerate() {
            let seed = (cap << 8) ^ pi as u64 ^ 0xFA17;
            let fair = crate::nominal::run_cell(SystemKind::Fair, cap, pair, nodes, ts, seed);
            let slurm = run_faulty_cell(SystemKind::Slurm, cap, pair, nodes, ts, seed, fair);
            let pen = run_faulty_cell(SystemKind::Penelope, cap, pair, nodes, ts, seed, fair);
            slurm_norm.push(fair / slurm);
            pen_norm.push(fair / pen);
        }
        all_slurm.extend_from_slice(&slurm_norm);
        all_pen.extend_from_slice(&pen_norm);
        rows.push(Fig3Row {
            per_socket_cap_w: cap,
            slurm: geometric_mean(&slurm_norm),
            penelope: geometric_mean(&pen_norm),
        });
    }
    Fig3Result {
        rows,
        overall_slurm: geometric_mean(&all_slurm),
        overall_penelope: geometric_mean(&all_pen),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn penelope_beats_slurm_under_faults() {
        let r = run_with_caps(Effort::Smoke, &[60]);
        assert!(
            r.penelope_advantage_pct() > 2.0,
            "Penelope advantage under faults only {:.2}%",
            r.penelope_advantage_pct()
        );
        assert!(r.render().contains("Figure 3"));
    }
}
