//! JSONL export and schema validation.
//!
//! One event per line, rendered by [`TraceEvent::to_jsonl`]. The schema is
//! deliberately flat so shell tooling (`jq`, `grep`) works on it directly:
//!
//! ```json
//! {"t_ns":1000000000,"node":2,"period":1,"kind":"request_sent","dst":0,"urgent":false,"alpha_mw":0,"seq":3}
//! ```
//!
//! `t_ns`, `node`, `period` and `kind` are always present; the remaining
//! fields depend on `kind`. Power is integer milliwatts (`*_mw`), time is
//! nanoseconds.

use std::collections::HashMap;
use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

use crate::event::{TraceEvent, KIND_NAMES};
use crate::observer::Observer;

/// Streams every event to a writer as JSONL.
pub struct JsonlObserver<W: Write + Send> {
    out: Mutex<W>,
}

impl JsonlObserver<BufWriter<File>> {
    /// Create (truncating) `path` and stream events into it.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        Ok(JsonlObserver::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write + Send> JsonlObserver<W> {
    /// Stream events into `writer`.
    pub fn new(writer: W) -> Self {
        JsonlObserver {
            out: Mutex::new(writer),
        }
    }

    /// Flush the underlying writer.
    pub fn flush(&self) -> io::Result<()> {
        self.out.lock().unwrap().flush()
    }

    /// Flush and hand back the writer.
    pub fn into_inner(self) -> W {
        self.out.into_inner().unwrap()
    }
}

impl<W: Write + Send> Observer for JsonlObserver<W> {
    fn on_event(&self, ev: &TraceEvent) {
        let mut out = self.out.lock().unwrap();
        // Trace export is best-effort: a full disk should not take the
        // power-management protocol down with it.
        let _ = writeln!(out, "{}", ev.to_jsonl());
    }
}

impl<W: Write + Send> fmt::Debug for JsonlObserver<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JsonlObserver").finish_non_exhaustive()
    }
}

/// Summary returned by [`validate_jsonl`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct JsonlSummary {
    /// Number of event lines validated.
    pub events: usize,
    /// Events per node id.
    pub per_node: HashMap<u32, usize>,
}

/// Validate a JSONL trace against the schema: every line carries `t_ns`,
/// `node`, `period` and a known `kind`, and per-node timestamps never go
/// backwards. Returns a summary, or a message naming the first offending
/// line.
pub fn validate_jsonl(text: &str) -> Result<JsonlSummary, String> {
    let mut summary = JsonlSummary::default();
    let mut last_t: HashMap<u32, u64> = HashMap::new();
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        if !(line.starts_with('{') && line.ends_with('}')) {
            return Err(format!("line {lineno}: not a JSON object: {line}"));
        }
        let t = field_u64(line, "t_ns")
            .ok_or_else(|| format!("line {lineno}: missing or malformed \"t_ns\""))?;
        let node = field_u64(line, "node")
            .ok_or_else(|| format!("line {lineno}: missing or malformed \"node\""))?;
        field_u64(line, "period")
            .ok_or_else(|| format!("line {lineno}: missing or malformed \"period\""))?;
        let kind = field_str(line, "kind")
            .ok_or_else(|| format!("line {lineno}: missing or malformed \"kind\""))?;
        if !KIND_NAMES.contains(&kind) {
            return Err(format!("line {lineno}: unknown kind \"{kind}\""));
        }
        let node = u32::try_from(node).map_err(|_| format!("line {lineno}: node id too large"))?;
        if let Some(&prev) = last_t.get(&node) {
            if t < prev {
                return Err(format!(
                    "line {lineno}: node {node} timestamp went backwards ({t} < {prev})"
                ));
            }
        }
        last_t.insert(node, t);
        summary.events += 1;
        *summary.per_node.entry(node).or_insert(0) += 1;
    }
    Ok(summary)
}

/// Extract the raw text of `"key":` from a flat one-line JSON object.
fn field_raw<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    let end = rest
        .char_indices()
        .find(|(i, c)| {
            if rest[..*i].starts_with('"') {
                *c == '"' && *i > 0
            } else {
                *c == ',' || *c == '}'
            }
        })
        .map(|(i, c)| if c == '"' { i + 1 } else { i })?;
    Some(&rest[..end])
}

fn field_u64(line: &str, key: &str) -> Option<u64> {
    field_raw(line, key)?.parse().ok()
}

fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let raw = field_raw(line, key)?;
    raw.strip_prefix('"')?.strip_suffix('"')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use penelope_units::{NodeId, Power, SimTime};

    fn ev(t: u64, node: u32, seq: u64) -> TraceEvent {
        TraceEvent {
            at: SimTime::from_millis(t),
            node: NodeId::new(node),
            period: t / 1000,
            kind: EventKind::RequestSent {
                dst: NodeId::new(1 - node),
                urgent: false,
                alpha: Power::ZERO,
                seq,
            },
        }
    }

    #[test]
    fn observer_writes_validatable_lines() {
        let obs = JsonlObserver::new(Vec::new());
        obs.on_event(&ev(1000, 0, 1));
        obs.on_event(&ev(1000, 1, 1));
        obs.on_event(&ev(2000, 0, 2));
        let text = String::from_utf8(obs.into_inner()).unwrap();
        let summary = validate_jsonl(&text).expect("valid trace");
        assert_eq!(summary.events, 3);
        assert_eq!(summary.per_node[&0], 2);
        assert_eq!(summary.per_node[&1], 1);
    }

    #[test]
    fn missing_field_is_rejected() {
        let err = validate_jsonl("{\"node\":0,\"period\":0,\"kind\":\"request_sent\"}")
            .expect_err("missing t_ns");
        assert!(err.contains("t_ns"), "{err}");
    }

    #[test]
    fn unknown_kind_is_rejected() {
        let err = validate_jsonl("{\"t_ns\":0,\"node\":0,\"period\":0,\"kind\":\"mystery\"}")
            .expect_err("unknown kind");
        assert!(err.contains("mystery"), "{err}");
    }

    #[test]
    fn backwards_per_node_time_is_rejected() {
        let obs = JsonlObserver::new(Vec::new());
        obs.on_event(&ev(2000, 0, 1));
        obs.on_event(&ev(1000, 0, 2));
        let text = String::from_utf8(obs.into_inner()).unwrap();
        let err = validate_jsonl(&text).expect_err("backwards time");
        assert!(err.contains("backwards"), "{err}");
    }

    #[test]
    fn interleaved_nodes_are_independent_clocks() {
        let obs = JsonlObserver::new(Vec::new());
        obs.on_event(&ev(5000, 0, 1));
        obs.on_event(&ev(1000, 1, 1)); // node 1 starts later in the file but earlier in time
        obs.on_event(&ev(6000, 0, 2));
        let text = String::from_utf8(obs.into_inner()).unwrap();
        assert!(validate_jsonl(&text).is_ok());
    }

    #[test]
    fn empty_and_blank_lines_are_ignored() {
        assert_eq!(validate_jsonl("\n\n").unwrap().events, 0);
    }
}
