//! Lock-free counters and a grant-size histogram over the event stream.

use std::sync::atomic::{AtomicU64, Ordering};

use penelope_units::Power;

use crate::event::{EventKind, TraceEvent, KIND_COUNT, KIND_NAMES};
use crate::observer::Observer;

/// Number of log₂ buckets in the grant-size histogram.
pub const HIST_BUCKETS: usize = 32;

/// Counts events by kind, accumulates the power moved by each kind of
/// transaction, and keeps a log₂ histogram of grant sizes. All state is
/// atomic, so every substrate (including the multi-threaded ones) can share
/// one instance; this is the common "status counter" shape reported by
/// local simulations and remote daemons alike.
#[derive(Debug, Default)]
pub struct CounterObserver {
    kinds: [AtomicU64; KIND_COUNT],
    deposited_mw: AtomicU64,
    withdrawn_mw: AtomicU64,
    granted_mw: AtomicU64,
    applied_mw: AtomicU64,
    grant_hist: [AtomicU64; HIST_BUCKETS],
}

impl CounterObserver {
    /// A fresh, all-zero counter set.
    pub fn new() -> Self {
        CounterObserver::default()
    }

    /// Histogram bucket for a grant of `amount`: bucket *b* holds grants
    /// with `2^(b-1) ≤ milliwatts < 2^b` (bucket 0 is zero-power grants).
    fn bucket(amount: Power) -> usize {
        let mw = amount.milliwatts();
        let bits = (u64::BITS - mw.leading_zeros()) as usize;
        bits.min(HIST_BUCKETS - 1)
    }

    /// A consistent-enough copy of the counters (individual loads are
    /// atomic; the set is not a consistent cut, which is fine for
    /// monitoring).
    pub fn snapshot(&self) -> CounterSnapshot {
        let mut kinds = [0u64; KIND_COUNT];
        for (slot, counter) in kinds.iter_mut().zip(&self.kinds) {
            *slot = counter.load(Ordering::Relaxed);
        }
        let mut grant_hist = [0u64; HIST_BUCKETS];
        for (slot, counter) in grant_hist.iter_mut().zip(&self.grant_hist) {
            *slot = counter.load(Ordering::Relaxed);
        }
        CounterSnapshot {
            kinds,
            deposited: Power::from_milliwatts(self.deposited_mw.load(Ordering::Relaxed)),
            withdrawn: Power::from_milliwatts(self.withdrawn_mw.load(Ordering::Relaxed)),
            granted: Power::from_milliwatts(self.granted_mw.load(Ordering::Relaxed)),
            applied: Power::from_milliwatts(self.applied_mw.load(Ordering::Relaxed)),
            grant_hist,
        }
    }
}

impl Observer for CounterObserver {
    fn on_event(&self, ev: &TraceEvent) {
        self.kinds[ev.kind.tag()].fetch_add(1, Ordering::Relaxed);
        match ev.kind {
            EventKind::PoolDeposit { amount, .. } => {
                self.deposited_mw
                    .fetch_add(amount.milliwatts(), Ordering::Relaxed);
            }
            EventKind::PoolWithdraw { amount, .. } => {
                self.withdrawn_mw
                    .fetch_add(amount.milliwatts(), Ordering::Relaxed);
            }
            EventKind::RequestServed { granted, .. } => {
                self.granted_mw
                    .fetch_add(granted.milliwatts(), Ordering::Relaxed);
                self.grant_hist[Self::bucket(granted)].fetch_add(1, Ordering::Relaxed);
            }
            EventKind::GrantApplied { applied, .. } => {
                self.applied_mw
                    .fetch_add(applied.milliwatts(), Ordering::Relaxed);
            }
            _ => {}
        }
    }
}

/// Plain-data copy of a [`CounterObserver`]'s state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Event counts, indexed by [`EventKind::tag`] / [`KIND_NAMES`].
    pub kinds: [u64; KIND_COUNT],
    /// Total power deposited into pools.
    pub deposited: Power,
    /// Total power withdrawn locally from pools.
    pub withdrawn: Power,
    /// Total power granted to peers (sum of `RequestServed.granted`).
    pub granted: Power,
    /// Total granted power applied to caps (sum of `GrantApplied.applied`).
    pub applied: Power,
    /// log₂ histogram of grant sizes in milliwatts (bucket 0 = zero-power
    /// grants, bucket *b* = `2^(b-1) ≤ mw < 2^b`).
    pub grant_hist: [u64; HIST_BUCKETS],
}

impl CounterSnapshot {
    /// Count of events of the kind named `name` (see [`KIND_NAMES`]).
    pub fn count(&self, name: &str) -> u64 {
        KIND_NAMES
            .iter()
            .position(|k| *k == name)
            .map(|i| self.kinds[i])
            .unwrap_or(0)
    }

    /// Requests this node's pool served.
    pub fn requests_served(&self) -> u64 {
        self.count("request_served")
    }

    /// Requests this node sent to peers.
    pub fn requests_sent(&self) -> u64 {
        self.count("request_sent")
    }

    /// Requests that timed out waiting for a response.
    pub fn timeouts(&self) -> u64 {
        self.count("request_timeout")
    }

    /// Times the local urgency flag was raised.
    pub fn urgency_raised(&self) -> u64 {
        self.count("urgency_raised")
    }

    /// Total events observed.
    pub fn total_events(&self) -> u64 {
        self.kinds.iter().sum()
    }
}

impl Default for CounterSnapshot {
    fn default() -> Self {
        CounterSnapshot {
            kinds: [0; KIND_COUNT],
            deposited: Power::ZERO,
            withdrawn: Power::ZERO,
            granted: Power::ZERO,
            applied: Power::ZERO,
            grant_hist: [0; HIST_BUCKETS],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use penelope_units::{NodeId, SimTime};

    fn ev(kind: EventKind) -> TraceEvent {
        TraceEvent {
            at: SimTime::from_secs(1),
            node: NodeId::new(0),
            period: 1,
            kind,
        }
    }

    fn w(x: u64) -> Power {
        Power::from_watts_u64(x)
    }

    #[test]
    fn counts_kinds_and_power_totals() {
        let c = CounterObserver::new();
        c.on_event(&ev(EventKind::PoolDeposit {
            amount: w(10),
            pool: w(10),
        }));
        c.on_event(&ev(EventKind::PoolWithdraw {
            amount: w(4),
            pool: w(6),
        }));
        c.on_event(&ev(EventKind::RequestServed {
            requester: NodeId::new(1),
            seq: 0,
            granted: w(3),
            urgent: false,
        }));
        c.on_event(&ev(EventKind::GrantApplied {
            seq: 0,
            granted: w(3),
            applied: w(3),
        }));
        let snap = c.snapshot();
        assert_eq!(snap.count("pool_deposit"), 1);
        assert_eq!(snap.deposited, w(10));
        assert_eq!(snap.withdrawn, w(4));
        assert_eq!(snap.granted, w(3));
        assert_eq!(snap.applied, w(3));
        assert_eq!(snap.requests_served(), 1);
        assert_eq!(snap.total_events(), 4);
    }

    #[test]
    fn grant_histogram_uses_log2_buckets() {
        let c = CounterObserver::new();
        for mw in [0u64, 1, 2, 3, 4, 1024] {
            c.on_event(&ev(EventKind::RequestServed {
                requester: NodeId::new(1),
                seq: 0,
                granted: Power::from_milliwatts(mw),
                urgent: false,
            }));
        }
        let h = c.snapshot().grant_hist;
        assert_eq!(h[0], 1); // 0 mW
        assert_eq!(h[1], 1); // 1 mW
        assert_eq!(h[2], 2); // 2-3 mW
        assert_eq!(h[3], 1); // 4-7 mW
        assert_eq!(h[11], 1); // 1024-2047 mW
    }

    #[test]
    fn unknown_kind_name_counts_zero() {
        assert_eq!(CounterSnapshot::default().count("nope"), 0);
    }
}
