//! The `Observer` trait and its zero-cost plumbing.

use std::fmt;
use std::sync::Arc;

use crate::event::TraceEvent;

/// A sink for protocol events.
///
/// Observers take `&self`: implementations use interior mutability (the
/// threaded runtime and the daemon emit from several threads at once), and
/// substrates hold them behind a [`SharedObserver`] so configs stay `Clone`.
pub trait Observer: Send + Sync {
    /// Receive one event.
    fn on_event(&self, ev: &TraceEvent);

    /// Whether this observer wants events at all. Emission sites skip even
    /// *constructing* events when this is `false`, which is what makes the
    /// no-op observer free on the hot path.
    fn enabled(&self) -> bool {
        true
    }
}

/// The do-nothing observer: `enabled()` is `false`, so emission sites never
/// build an event for it.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopObserver;

impl Observer for NoopObserver {
    fn on_event(&self, _ev: &TraceEvent) {}

    fn enabled(&self) -> bool {
        false
    }
}

/// A cheaply clonable handle to an observer, embeddable in config structs.
///
/// `Default` is the no-op observer, so existing configs gain observability
/// without changing behaviour; `emit` takes a closure so disabled observers
/// cost one boolean load and nothing else.
#[derive(Clone)]
pub struct SharedObserver(Arc<dyn Observer>);

impl SharedObserver {
    /// Wrap an observer.
    pub fn new(observer: Arc<dyn Observer>) -> Self {
        SharedObserver(observer)
    }

    /// The no-op observer.
    pub fn noop() -> Self {
        SharedObserver(Arc::new(NoopObserver))
    }

    /// Whether the underlying observer wants events.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.0.enabled()
    }

    /// Build and deliver an event — but only if the observer is enabled.
    #[inline]
    pub fn emit(&self, build: impl FnOnce() -> TraceEvent) {
        if self.0.enabled() {
            self.0.on_event(&build());
        }
    }

    /// Deliver an already-built event (used when fanning out).
    pub fn on_event(&self, ev: &TraceEvent) {
        self.0.on_event(ev);
    }
}

impl Default for SharedObserver {
    fn default() -> Self {
        SharedObserver::noop()
    }
}

impl fmt::Debug for SharedObserver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedObserver")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl<T: Observer + 'static> From<Arc<T>> for SharedObserver {
    fn from(observer: Arc<T>) -> Self {
        SharedObserver(observer)
    }
}

/// Deliver every event to each of a set of observers.
#[derive(Default)]
pub struct FanoutObserver {
    sinks: Vec<SharedObserver>,
}

impl FanoutObserver {
    /// Fan out to `sinks`.
    pub fn new(sinks: Vec<SharedObserver>) -> Self {
        FanoutObserver { sinks }
    }

    /// Combine two observer handles into one, skipping disabled sides.
    /// Returns a no-op handle when both sides are disabled.
    pub fn pair(a: SharedObserver, b: SharedObserver) -> SharedObserver {
        match (a.enabled(), b.enabled()) {
            (false, false) => SharedObserver::noop(),
            (true, false) => a,
            (false, true) => b,
            (true, true) => SharedObserver::new(Arc::new(FanoutObserver::new(vec![a, b]))),
        }
    }
}

impl Observer for FanoutObserver {
    fn on_event(&self, ev: &TraceEvent) {
        for sink in &self.sinks {
            if sink.enabled() {
                sink.on_event(ev);
            }
        }
    }

    fn enabled(&self) -> bool {
        self.sinks.iter().any(SharedObserver::enabled)
    }
}

impl fmt::Debug for FanoutObserver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FanoutObserver")
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::ring::RingBufferObserver;
    use penelope_units::{NodeId, SimTime};

    fn ev(seq: u64) -> TraceEvent {
        TraceEvent {
            at: SimTime::from_secs(1),
            node: NodeId::new(0),
            period: 1,
            kind: EventKind::RequestTimeout { seq },
        }
    }

    #[test]
    fn noop_is_disabled_and_emit_skips_construction() {
        let obs = SharedObserver::noop();
        assert!(!obs.enabled());
        let mut built = false;
        obs.emit(|| {
            built = true;
            ev(0)
        });
        assert!(!built, "emit must not build events for a disabled observer");
    }

    #[test]
    fn fanout_pair_collapses_disabled_sides() {
        let ring = Arc::new(RingBufferObserver::unbounded());
        let combined = FanoutObserver::pair(SharedObserver::noop(), ring.clone().into());
        combined.emit(|| ev(1));
        assert_eq!(ring.len(), 1);

        let both_off = FanoutObserver::pair(SharedObserver::noop(), SharedObserver::noop());
        assert!(!both_off.enabled());
    }

    #[test]
    fn fanout_delivers_to_every_sink() {
        let a = Arc::new(RingBufferObserver::unbounded());
        let b = Arc::new(RingBufferObserver::unbounded());
        let fan = FanoutObserver::pair(a.clone().into(), b.clone().into());
        fan.emit(|| ev(7));
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
        assert_eq!(a.events()[0], ev(7));
    }
}
