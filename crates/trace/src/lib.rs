//! # penelope-trace — structured observability for every substrate
//!
//! The paper's evaluation (§4) is derived from *watching* the protocol:
//! per-request turnaround, redistribution traffic, cap trajectories. This
//! crate defines the typed protocol-event vocabulary ([`TraceEvent`] /
//! [`EventKind`]) and the [`Observer`] sink trait that the DES simulator,
//! the lockstep threaded runtime and the UDP daemon all emit through — the
//! same events everywhere, so the conformance harness can diff event
//! streams across substrates and the metrics crate can compute figures as
//! pure folds instead of reconstructing them from lossy summaries.
//!
//! ## Choosing an observer
//!
//! * [`NoopObserver`] (the default) — disabled; emission sites skip event
//!   construction entirely, so tracing costs nothing when off.
//! * [`RingBufferObserver`] — capture events in memory (optionally bounded,
//!   flight-recorder style) for programmatic analysis.
//! * [`JsonlObserver`] — stream events to a writer as JSONL
//!   (see [`validate_jsonl`] for the schema contract).
//! * [`CounterObserver`] — lock-free per-kind counts, power totals and a
//!   grant-size histogram; the common status shape for local and remote
//!   nodes.
//! * [`FanoutObserver`] — deliver to several of the above at once.
//!
//! Substrates accept any of these through [`SharedObserver`], a cheaply
//! clonable handle that keeps config structs `Clone + Debug`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counter;
pub mod event;
pub mod jsonl;
pub mod observer;
pub mod ring;

pub use counter::{CounterObserver, CounterSnapshot, HIST_BUCKETS};
pub use event::{EventKind, NodeClass, TraceEvent, KIND_COUNT, KIND_NAMES};
pub use jsonl::{validate_jsonl, JsonlObserver, JsonlSummary};
pub use observer::{FanoutObserver, NoopObserver, Observer, SharedObserver};
pub use ring::RingBufferObserver;
