//! The typed protocol-event vocabulary.
//!
//! Every substrate — the DES simulator, the lockstep threaded runtime and
//! the UDP daemon — emits exactly these events, so observers (and the
//! conformance harness) can diff protocol behaviour across deployments
//! instead of comparing lossy end-of-run summaries.

use std::fmt;

use penelope_units::{NodeId, Power, SimTime};

/// The decider's per-iteration classification (Algorithm 1, line 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum NodeClass {
    /// Consumption sits at least ε below the cap: power can be shed.
    Excess,
    /// Consumption presses against the cap: more power is wanted.
    Hungry,
    /// Consumption is within ε of the cap: hold.
    AtMargin,
}

impl NodeClass {
    /// Stable snake_case name used in the JSONL schema.
    pub fn name(self) -> &'static str {
        match self {
            NodeClass::Excess => "excess",
            NodeClass::Hungry => "hungry",
            NodeClass::AtMargin => "at_margin",
        }
    }
}

/// What happened. Power amounts are exact (integer milliwatts), so folds
/// over an event stream reproduce the substrates' own accounting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum EventKind {
    /// The decider classified the node for this iteration.
    Classified {
        /// The classification.
        class: NodeClass,
        /// Power reading the classification was based on.
        reading: Power,
        /// Cap at classification time (before any shed/raise).
        cap: Power,
    },
    /// Power entered the local pool (shed excess, grant overflow, or an
    /// urgency release).
    PoolDeposit {
        /// Amount deposited.
        amount: Power,
        /// Pool level after the deposit.
        pool: Power,
    },
    /// Power left the local pool into the local cap (`takeLocal`).
    PoolWithdraw {
        /// Amount withdrawn.
        amount: Power,
        /// Pool level after the withdrawal.
        pool: Power,
    },
    /// A hungry decider sent a peer request.
    RequestSent {
        /// The peer asked for power.
        dst: NodeId,
        /// Whether distributed urgency was raised on the request.
        urgent: bool,
        /// Requested amount hint (α); zero means "whatever you can spare".
        alpha: Power,
        /// Per-node request sequence number.
        seq: u64,
    },
    /// This node's pool served a peer request (the grant may be zero).
    RequestServed {
        /// The requesting node.
        requester: NodeId,
        /// The requester's sequence number.
        seq: u64,
        /// Amount granted out of the pool.
        granted: Power,
        /// Whether the request carried the urgency flag.
        urgent: bool,
    },
    /// A peer request was dropped before it could be served (queue
    /// overflow, dead node, partition).
    RequestDenied {
        /// The requesting node.
        requester: NodeId,
        /// The requester's sequence number.
        seq: u64,
    },
    /// The decider gave up waiting for a response to `seq`.
    RequestTimeout {
        /// The sequence number that timed out.
        seq: u64,
    },
    /// A grant reached the requesting decider and was applied to its cap.
    GrantApplied {
        /// The sequence number the grant answers.
        seq: u64,
        /// Amount the peer granted.
        granted: Power,
        /// Amount actually added to the cap (the rest, if any, overflowed
        /// back into the pool and shows up as a `PoolDeposit`).
        applied: Power,
    },
    /// Serving an urgent request switched the local urgency flag on.
    UrgencyRaised {
        /// The peer whose urgent request raised the flag.
        by: NodeId,
    },
    /// The local urgency flag switched off (decider released down to its
    /// initial cap, or a non-urgent request overwrote the flag).
    UrgencyCleared {
        /// Power released back into the pool by the clearing decider
        /// (zero when the flag was overwritten by a non-urgent request).
        released: Power,
    },
    /// End-of-iteration cap/reading/pool sample (once per decider period).
    CapActuated {
        /// Requested cap after this iteration.
        cap: Power,
        /// The iteration's power reading.
        reading: Power,
        /// Pool level after this iteration.
        pool: Power,
    },
    /// A protocol message left this node.
    MsgSent {
        /// Destination node.
        dst: NodeId,
        /// Power carried by the message (grants; zero for requests).
        carried: Power,
    },
    /// A protocol message arrived at this node.
    MsgRecv {
        /// Source node.
        src: NodeId,
        /// Power carried by the message.
        carried: Power,
    },
    /// A protocol message was dropped in flight.
    MsgDropped {
        /// Intended destination.
        dst: NodeId,
        /// Power carried by the message (lost power shows up in the
        /// substrate's conservation ledger, not here).
        carried: Power,
    },
    /// This node's pool served a non-zero grant and escrowed it pending
    /// the requester's ack (the lossy-network reliability layer).
    GrantEscrowed {
        /// The requesting node the grant is addressed to.
        requester: NodeId,
        /// The requester's sequence number.
        seq: u64,
        /// The escrowed (already pool-debited) amount.
        amount: Power,
    },
    /// An escrowed grant's ack never arrived and the grant is known
    /// undelivered: the granter re-credited the amount to its own pool.
    GrantReclaimed {
        /// The requester the grant had been addressed to.
        requester: NodeId,
        /// The requester's sequence number.
        seq: u64,
        /// The amount returned to the granter's pool.
        amount: Power,
    },
    /// A grant acknowledgement was dropped in flight (harmless for
    /// conservation — the granter's escrow entry simply expires without
    /// credit — but worth seeing in a trace).
    AckDropped {
        /// The granter the ack was addressed to.
        dst: NodeId,
        /// The acknowledged sequence number.
        seq: u64,
    },
    /// A node crashed: its cap, pool and escrowed grants left the system
    /// (substrate lifecycle, not protocol — a kill script differs
    /// legitimately between substrates).
    NodeKilled {
        /// Power retired to the lost ledger by the crash (cap + pool +
        /// undelivered escrow).
        lost: Power,
    },
    /// A crashed node rejoined the cluster with power re-admitted from
    /// the lost ledger (never more than was lost at the crash).
    NodeRestarted {
        /// Power re-admitted from the lost ledger as the reborn cap.
        readmitted: Power,
    },
    /// The decider's liveness layer started suspecting a peer after
    /// consecutive request timeouts; partner selection avoids it until it
    /// is cleared or the probe interval elapses.
    PeerSuspected {
        /// The suspected peer.
        peer: NodeId,
    },
    /// A reply from a suspected peer cleared its suspicion.
    PeerCleared {
        /// The peer no longer suspected.
        peer: NodeId,
    },
    /// A suspicion was adopted secondhand from a peer's gossiped digest
    /// rather than earned through this node's own timeout schedule.
    SuspicionGossiped {
        /// The peer now suspected.
        peer: NodeId,
        /// The peer whose digest carried the suspicion.
        via: NodeId,
    },
    /// A suspicion was dismissed because incarnation evidence proved it
    /// stale: the suspected peer has re-incarnated (rejoined with a newer
    /// seq-epoch) since the suspicion was formed.
    SuspicionRefuted {
        /// The peer no longer suspected.
        peer: NodeId,
    },
    /// A request was sent to a peer whose suspicion outlived the probe
    /// interval: this is the liveness probe that will either clear the
    /// suspicion (any reply) or re-confirm it (another timeout). Emitted
    /// alongside the probe's `RequestSent`.
    PeerProbed {
        /// The suspected peer being probed.
        peer: NodeId,
    },
    /// A datagram send failed at the OS socket layer (`send_to` returned
    /// an error). Transport-level, and distinct from
    /// [`EventKind::MsgDropped`]: a dropped message models network loss
    /// the fault plane *injected*, while a failed send means the host
    /// refused to take the datagram at all (unroutable peer, full
    /// buffers). Fault-free runs assert this counter stays zero.
    SendFailed {
        /// Intended destination.
        dst: NodeId,
    },
    /// A market-policy decider priced the request it is about to send:
    /// `bid` is what the power is worth to it (its base bid plus its
    /// deprivation below the initial cap). Emitted once per fresh request,
    /// immediately before its `RequestSent`; retransmits re-send the bid
    /// without re-announcing it.
    BidPlaced {
        /// The request's sequence number.
        seq: u64,
        /// The attached bid.
        bid: Power,
    },
    /// The predictive decider's phase-change detector fired: the reading
    /// stepped far enough from the previous one that the forecast snapped
    /// straight to it instead of easing via the EWMA.
    ForecastJump {
        /// The forecast *before* the snap (it becomes `reading` after).
        forecast: Power,
        /// The reading that triggered the snap.
        reading: Power,
    },
}

/// Number of distinct [`EventKind`] variants (size of per-kind counters).
pub const KIND_COUNT: usize = 27;

impl EventKind {
    /// Dense index of the variant, `0..KIND_COUNT` (counter bucket).
    pub fn tag(&self) -> usize {
        match self {
            EventKind::Classified { .. } => 0,
            EventKind::PoolDeposit { .. } => 1,
            EventKind::PoolWithdraw { .. } => 2,
            EventKind::RequestSent { .. } => 3,
            EventKind::RequestServed { .. } => 4,
            EventKind::RequestDenied { .. } => 5,
            EventKind::RequestTimeout { .. } => 6,
            EventKind::GrantApplied { .. } => 7,
            EventKind::UrgencyRaised { .. } => 8,
            EventKind::UrgencyCleared { .. } => 9,
            EventKind::CapActuated { .. } => 10,
            EventKind::MsgSent { .. } => 11,
            EventKind::MsgRecv { .. } => 12,
            EventKind::MsgDropped { .. } => 13,
            EventKind::GrantEscrowed { .. } => 14,
            EventKind::GrantReclaimed { .. } => 15,
            EventKind::AckDropped { .. } => 16,
            EventKind::NodeKilled { .. } => 17,
            EventKind::NodeRestarted { .. } => 18,
            EventKind::PeerSuspected { .. } => 19,
            EventKind::PeerCleared { .. } => 20,
            EventKind::SuspicionGossiped { .. } => 21,
            EventKind::SuspicionRefuted { .. } => 22,
            EventKind::PeerProbed { .. } => 23,
            EventKind::SendFailed { .. } => 24,
            EventKind::BidPlaced { .. } => 25,
            EventKind::ForecastJump { .. } => 26,
        }
    }

    /// Stable snake_case name used as the JSONL `kind` field.
    pub fn name(&self) -> &'static str {
        KIND_NAMES[self.tag()]
    }

    /// `true` for events that are part of the protocol narrative (as
    /// opposed to transport-level message bookkeeping). Cross-substrate
    /// stream diffs compare exactly these. The escrow/ack events are
    /// transport-level too: they narrate delivery reliability, which
    /// legitimately differs between substrates. Gossip arrival depends on
    /// which grants and acks happen to be in flight — transport timing —
    /// so the suspicion-gossip kinds stay out of protocol diffs as well.
    pub fn is_protocol(&self) -> bool {
        !matches!(
            self,
            EventKind::MsgSent { .. }
                | EventKind::MsgRecv { .. }
                | EventKind::MsgDropped { .. }
                | EventKind::GrantEscrowed { .. }
                | EventKind::GrantReclaimed { .. }
                | EventKind::AckDropped { .. }
                | EventKind::NodeKilled { .. }
                | EventKind::NodeRestarted { .. }
                | EventKind::SuspicionGossiped { .. }
                | EventKind::SuspicionRefuted { .. }
                | EventKind::SendFailed { .. }
        )
    }
}

/// JSONL `kind` names, indexed by [`EventKind::tag`].
pub const KIND_NAMES: [&str; KIND_COUNT] = [
    "classified",
    "pool_deposit",
    "pool_withdraw",
    "request_sent",
    "request_served",
    "request_denied",
    "request_timeout",
    "grant_applied",
    "urgency_raised",
    "urgency_cleared",
    "cap_actuated",
    "msg_sent",
    "msg_recv",
    "msg_dropped",
    "grant_escrowed",
    "grant_reclaimed",
    "ack_dropped",
    "node_killed",
    "node_restarted",
    "peer_suspected",
    "peer_cleared",
    "suspicion_gossiped",
    "suspicion_refuted",
    "peer_probed",
    "send_failed",
    "bid_placed",
    "forecast_jump",
];

/// One protocol event: what happened, where, and when.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TraceEvent {
    /// When the event happened (substrate clock).
    pub at: SimTime,
    /// The node the event happened on.
    pub node: NodeId,
    /// Decider period the event belongs to (`at / period_length`).
    pub period: u64,
    /// What happened.
    pub kind: EventKind,
}

impl TraceEvent {
    /// Render the event as one line of the JSONL schema (no trailing
    /// newline). Times are nanoseconds, power amounts integer milliwatts;
    /// the first four fields (`t_ns`, `node`, `period`, `kind`) are always
    /// present, the rest depend on `kind`.
    pub fn to_jsonl(&self) -> String {
        let mut s = String::with_capacity(128);
        s.push_str("{\"t_ns\":");
        s.push_str(&self.at.as_nanos().to_string());
        s.push_str(",\"node\":");
        s.push_str(&self.node.raw().to_string());
        s.push_str(",\"period\":");
        s.push_str(&self.period.to_string());
        s.push_str(",\"kind\":\"");
        s.push_str(self.kind.name());
        s.push('"');
        let num = |s: &mut String, key: &str, v: u64| {
            s.push_str(",\"");
            s.push_str(key);
            s.push_str("\":");
            s.push_str(&v.to_string());
        };
        match self.kind {
            EventKind::Classified {
                class,
                reading,
                cap,
            } => {
                s.push_str(",\"class\":\"");
                s.push_str(class.name());
                s.push('"');
                num(&mut s, "reading_mw", reading.milliwatts());
                num(&mut s, "cap_mw", cap.milliwatts());
            }
            EventKind::PoolDeposit { amount, pool } | EventKind::PoolWithdraw { amount, pool } => {
                num(&mut s, "amount_mw", amount.milliwatts());
                num(&mut s, "pool_mw", pool.milliwatts());
            }
            EventKind::RequestSent {
                dst,
                urgent,
                alpha,
                seq,
            } => {
                num(&mut s, "dst", u64::from(dst.raw()));
                s.push_str(",\"urgent\":");
                s.push_str(if urgent { "true" } else { "false" });
                num(&mut s, "alpha_mw", alpha.milliwatts());
                num(&mut s, "seq", seq);
            }
            EventKind::RequestServed {
                requester,
                seq,
                granted,
                urgent,
            } => {
                num(&mut s, "requester", u64::from(requester.raw()));
                num(&mut s, "seq", seq);
                num(&mut s, "granted_mw", granted.milliwatts());
                s.push_str(",\"urgent\":");
                s.push_str(if urgent { "true" } else { "false" });
            }
            EventKind::RequestDenied { requester, seq } => {
                num(&mut s, "requester", u64::from(requester.raw()));
                num(&mut s, "seq", seq);
            }
            EventKind::RequestTimeout { seq } => num(&mut s, "seq", seq),
            EventKind::GrantApplied {
                seq,
                granted,
                applied,
            } => {
                num(&mut s, "seq", seq);
                num(&mut s, "granted_mw", granted.milliwatts());
                num(&mut s, "applied_mw", applied.milliwatts());
            }
            EventKind::UrgencyRaised { by } => num(&mut s, "by", u64::from(by.raw())),
            EventKind::UrgencyCleared { released } => {
                num(&mut s, "released_mw", released.milliwatts())
            }
            EventKind::CapActuated { cap, reading, pool } => {
                num(&mut s, "cap_mw", cap.milliwatts());
                num(&mut s, "reading_mw", reading.milliwatts());
                num(&mut s, "pool_mw", pool.milliwatts());
            }
            EventKind::MsgSent { dst, carried } | EventKind::MsgDropped { dst, carried } => {
                num(&mut s, "dst", u64::from(dst.raw()));
                num(&mut s, "carried_mw", carried.milliwatts());
            }
            EventKind::MsgRecv { src, carried } => {
                num(&mut s, "src", u64::from(src.raw()));
                num(&mut s, "carried_mw", carried.milliwatts());
            }
            EventKind::GrantEscrowed {
                requester,
                seq,
                amount,
            }
            | EventKind::GrantReclaimed {
                requester,
                seq,
                amount,
            } => {
                num(&mut s, "requester", u64::from(requester.raw()));
                num(&mut s, "seq", seq);
                num(&mut s, "amount_mw", amount.milliwatts());
            }
            EventKind::AckDropped { dst, seq } => {
                num(&mut s, "dst", u64::from(dst.raw()));
                num(&mut s, "seq", seq);
            }
            EventKind::NodeKilled { lost } => num(&mut s, "lost_mw", lost.milliwatts()),
            EventKind::NodeRestarted { readmitted } => {
                num(&mut s, "readmitted_mw", readmitted.milliwatts())
            }
            EventKind::PeerSuspected { peer }
            | EventKind::PeerCleared { peer }
            | EventKind::SuspicionRefuted { peer }
            | EventKind::PeerProbed { peer } => num(&mut s, "peer", u64::from(peer.raw())),
            EventKind::SuspicionGossiped { peer, via } => {
                num(&mut s, "peer", u64::from(peer.raw()));
                num(&mut s, "via", u64::from(via.raw()));
            }
            EventKind::SendFailed { dst } => num(&mut s, "dst", u64::from(dst.raw())),
            EventKind::BidPlaced { seq, bid } => {
                num(&mut s, "seq", seq);
                num(&mut s, "bid_mw", bid.milliwatts());
            }
            EventKind::ForecastJump { forecast, reading } => {
                num(&mut s, "forecast_mw", forecast.milliwatts());
                num(&mut s, "reading_mw", reading.milliwatts());
            }
        }
        s.push('}');
        s
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>12.6}s n{} p{}] {:?}",
            self.at.as_secs_f64(),
            self.node.raw(),
            self.period,
            self.kind
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(x: u64) -> Power {
        Power::from_watts_u64(x)
    }

    #[test]
    fn tags_are_dense_and_names_unique() {
        let mut seen = std::collections::HashSet::new();
        for name in KIND_NAMES {
            assert!(seen.insert(name), "duplicate kind name {name}");
        }
        let ev = EventKind::RequestTimeout { seq: 1 };
        assert_eq!(KIND_NAMES[ev.tag()], "request_timeout");
        assert_eq!(ev.name(), "request_timeout");
    }

    #[test]
    fn jsonl_carries_the_common_fields() {
        let ev = TraceEvent {
            at: SimTime::from_secs(2),
            node: NodeId::new(3),
            period: 2,
            kind: EventKind::RequestSent {
                dst: NodeId::new(1),
                urgent: true,
                alpha: w(5),
                seq: 7,
            },
        };
        let line = ev.to_jsonl();
        assert_eq!(
            line,
            "{\"t_ns\":2000000000,\"node\":3,\"period\":2,\"kind\":\"request_sent\",\
             \"dst\":1,\"urgent\":true,\"alpha_mw\":5000,\"seq\":7}"
        );
    }

    #[test]
    fn transport_kinds_are_not_protocol() {
        let msg = EventKind::MsgSent {
            dst: NodeId::new(0),
            carried: Power::ZERO,
        };
        assert!(!msg.is_protocol());
        assert!(EventKind::RequestTimeout { seq: 0 }.is_protocol());
        // The escrow/ack reliability layer is transport-level too: its
        // events must never perturb cross-substrate protocol-stream diffs.
        assert!(!EventKind::GrantEscrowed {
            requester: NodeId::new(1),
            seq: 0,
            amount: w(1),
        }
        .is_protocol());
        assert!(!EventKind::GrantReclaimed {
            requester: NodeId::new(1),
            seq: 0,
            amount: w(1),
        }
        .is_protocol());
        assert!(!EventKind::AckDropped {
            dst: NodeId::new(1),
            seq: 0,
        }
        .is_protocol());
    }

    #[test]
    fn churn_kinds_render_and_classify() {
        // Lifecycle kinds narrate the fault script, which legitimately
        // differs per substrate — they must stay out of protocol diffs.
        assert!(!EventKind::NodeKilled { lost: w(3) }.is_protocol());
        assert!(!EventKind::NodeRestarted { readmitted: w(3) }.is_protocol());
        // Suspicion is decider state driven purely by timeouts, emitted
        // identically on every substrate — it belongs in the diff.
        assert!(EventKind::PeerSuspected {
            peer: NodeId::new(1)
        }
        .is_protocol());
        assert!(EventKind::PeerCleared {
            peer: NodeId::new(1)
        }
        .is_protocol());
        let ev = TraceEvent {
            at: SimTime::from_secs(3),
            node: NodeId::new(2),
            period: 3,
            kind: EventKind::NodeRestarted { readmitted: w(160) },
        };
        assert_eq!(
            ev.to_jsonl(),
            "{\"t_ns\":3000000000,\"node\":2,\"period\":3,\"kind\":\"node_restarted\",\
             \"readmitted_mw\":160000}"
        );
        let sus = TraceEvent {
            at: SimTime::from_secs(4),
            node: NodeId::new(0),
            period: 4,
            kind: EventKind::PeerSuspected {
                peer: NodeId::new(5),
            },
        };
        assert_eq!(
            sus.to_jsonl(),
            "{\"t_ns\":4000000000,\"node\":0,\"period\":4,\"kind\":\"peer_suspected\",\"peer\":5}"
        );
    }

    #[test]
    fn gossip_kinds_render_and_classify() {
        // Gossip rides on grants/acks, so when a suspicion arrives is a
        // transport-timing fact — keep both kinds out of protocol diffs.
        assert!(!EventKind::SuspicionGossiped {
            peer: NodeId::new(1),
            via: NodeId::new(2),
        }
        .is_protocol());
        assert!(!EventKind::SuspicionRefuted {
            peer: NodeId::new(1)
        }
        .is_protocol());
        let ev = TraceEvent {
            at: SimTime::from_secs(5),
            node: NodeId::new(0),
            period: 5,
            kind: EventKind::SuspicionGossiped {
                peer: NodeId::new(3),
                via: NodeId::new(2),
            },
        };
        assert_eq!(
            ev.to_jsonl(),
            "{\"t_ns\":5000000000,\"node\":0,\"period\":5,\"kind\":\"suspicion_gossiped\",\
             \"peer\":3,\"via\":2}"
        );
        let refuted = TraceEvent {
            at: SimTime::from_secs(6),
            node: NodeId::new(1),
            period: 6,
            kind: EventKind::SuspicionRefuted {
                peer: NodeId::new(3),
            },
        };
        assert_eq!(
            refuted.to_jsonl(),
            "{\"t_ns\":6000000000,\"node\":1,\"period\":6,\"kind\":\"suspicion_refuted\",\"peer\":3}"
        );
    }

    #[test]
    fn probe_kind_renders_and_classifies() {
        // The probe is a pure function of decider state (suspicion age)
        // and the selection that produced the accompanying RequestSent,
        // so it belongs in cross-substrate protocol diffs.
        assert!(EventKind::PeerProbed {
            peer: NodeId::new(1)
        }
        .is_protocol());
        let ev = TraceEvent {
            at: SimTime::from_secs(7),
            node: NodeId::new(2),
            period: 7,
            kind: EventKind::PeerProbed {
                peer: NodeId::new(4),
            },
        };
        assert_eq!(
            ev.to_jsonl(),
            "{\"t_ns\":7000000000,\"node\":2,\"period\":7,\"kind\":\"peer_probed\",\"peer\":4}"
        );
    }

    #[test]
    fn policy_kinds_render_and_classify() {
        // Bid and forecast events are pure decider decisions (deterministic
        // from readings and config), so they belong in cross-substrate
        // protocol diffs.
        assert!(EventKind::BidPlaced { seq: 0, bid: w(2) }.is_protocol());
        assert!(EventKind::ForecastJump {
            forecast: w(90),
            reading: w(140),
        }
        .is_protocol());
        let bid = TraceEvent {
            at: SimTime::from_secs(8),
            node: NodeId::new(1),
            period: 8,
            kind: EventKind::BidPlaced { seq: 12, bid: w(9) },
        };
        assert_eq!(
            bid.to_jsonl(),
            "{\"t_ns\":8000000000,\"node\":1,\"period\":8,\"kind\":\"bid_placed\",\
             \"seq\":12,\"bid_mw\":9000}"
        );
        let jump = TraceEvent {
            at: SimTime::from_secs(9),
            node: NodeId::new(2),
            period: 9,
            kind: EventKind::ForecastJump {
                forecast: w(90),
                reading: w(140),
            },
        };
        assert_eq!(
            jump.to_jsonl(),
            "{\"t_ns\":9000000000,\"node\":2,\"period\":9,\"kind\":\"forecast_jump\",\
             \"forecast_mw\":90000,\"reading_mw\":140000}"
        );
    }

    #[test]
    fn escrow_kinds_render_their_fields() {
        let ev = TraceEvent {
            at: SimTime::from_secs(1),
            node: NodeId::new(0),
            period: 1,
            kind: EventKind::GrantReclaimed {
                requester: NodeId::new(2),
                seq: 9,
                amount: w(7),
            },
        };
        assert_eq!(
            ev.to_jsonl(),
            "{\"t_ns\":1000000000,\"node\":0,\"period\":1,\"kind\":\"grant_reclaimed\",\
             \"requester\":2,\"seq\":9,\"amount_mw\":7000}"
        );
        let ack = TraceEvent {
            at: SimTime::ZERO,
            node: NodeId::new(3),
            period: 0,
            kind: EventKind::AckDropped {
                dst: NodeId::new(0),
                seq: 4,
            },
        };
        assert_eq!(
            ack.to_jsonl(),
            "{\"t_ns\":0,\"node\":3,\"period\":0,\"kind\":\"ack_dropped\",\"dst\":0,\"seq\":4}"
        );
    }
}
