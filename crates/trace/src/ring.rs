//! In-memory event capture with an optional size bound.

use std::collections::VecDeque;
use std::sync::Mutex;

use crate::event::TraceEvent;
use crate::observer::Observer;

/// Captures events in memory; with a capacity, the oldest events are
/// discarded first (flight-recorder style).
#[derive(Debug, Default)]
pub struct RingBufferObserver {
    buf: Mutex<VecDeque<TraceEvent>>,
    capacity: Option<usize>,
}

impl RingBufferObserver {
    /// Keep every event (bounded only by memory).
    pub fn unbounded() -> Self {
        RingBufferObserver::default()
    }

    /// Keep at most `capacity` events, discarding the oldest.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "ring buffer capacity must be positive");
        RingBufferObserver {
            buf: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity: Some(capacity),
        }
    }

    /// Snapshot of the captured events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.buf.lock().unwrap().iter().copied().collect()
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.lock().unwrap().len()
    }

    /// Whether nothing has been captured (or everything was discarded).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drain and return the captured events, oldest first.
    pub fn take(&self) -> Vec<TraceEvent> {
        self.buf.lock().unwrap().drain(..).collect()
    }
}

impl Observer for RingBufferObserver {
    fn on_event(&self, ev: &TraceEvent) {
        let mut buf = self.buf.lock().unwrap();
        if let Some(cap) = self.capacity {
            if buf.len() == cap {
                buf.pop_front();
            }
        }
        buf.push_back(*ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use penelope_units::{NodeId, SimTime};

    fn ev(seq: u64) -> TraceEvent {
        TraceEvent {
            at: SimTime::from_millis(seq),
            node: NodeId::new(0),
            period: 0,
            kind: EventKind::RequestTimeout { seq },
        }
    }

    #[test]
    fn unbounded_keeps_everything_in_order() {
        let ring = RingBufferObserver::unbounded();
        for i in 0..100 {
            ring.on_event(&ev(i));
        }
        let events = ring.events();
        assert_eq!(events.len(), 100);
        assert_eq!(events[0], ev(0));
        assert_eq!(events[99], ev(99));
    }

    #[test]
    fn bounded_discards_oldest_first() {
        let ring = RingBufferObserver::with_capacity(3);
        for i in 0..5 {
            ring.on_event(&ev(i));
        }
        let kept: Vec<_> = ring.events();
        assert_eq!(kept, vec![ev(2), ev(3), ev(4)]);
    }

    #[test]
    fn take_drains() {
        let ring = RingBufferObserver::unbounded();
        ring.on_event(&ev(1));
        assert_eq!(ring.take().len(), 1);
        assert!(ring.is_empty());
    }
}
