//! Devices that live under a powercap.

use penelope_units::{Energy, Power, SimDuration, SimTime};

/// Something that consumes power under a cap: the node's sockets plus
/// whatever application is running on them.
///
/// The simulated RAPL advances the device over windows during which the
/// *effective* cap is constant, so implementations only ever see
/// piecewise-constant caps and can integrate exactly.
pub trait CappedDevice {
    /// Consume energy over `[from, to)` under a constant effective cap.
    /// Returns the energy actually dissipated (which must not exceed
    /// `cap × (to - from)`).
    fn advance(&mut self, from: SimTime, to: SimTime, effective_cap: Power) -> Energy;

    /// The instantaneous power the device *wants* right now (its demand),
    /// used by diagnostics and by tests; not consulted for integration.
    fn demand(&self, at: SimTime) -> Power;
}

/// A device with constant demand: consumes `min(cap, demand)` forever.
#[derive(Clone, Debug)]
pub struct ConstantDevice {
    demand: Power,
}

impl ConstantDevice {
    /// A device that always wants `demand`.
    pub fn new(demand: Power) -> Self {
        ConstantDevice { demand }
    }
}

impl CappedDevice for ConstantDevice {
    fn advance(&mut self, from: SimTime, to: SimTime, effective_cap: Power) -> Energy {
        let dt = to.saturating_since(from);
        Energy::from_power(self.demand.min(effective_cap), dt)
    }

    fn demand(&self, _at: SimTime) -> Power {
        self.demand
    }
}

/// A device that idles at a small floor power — a node whose application has
/// finished. The floor models package idle draw.
#[derive(Clone, Debug)]
pub struct IdleDevice {
    floor: Power,
}

impl IdleDevice {
    /// A device idling at `floor` watts.
    pub fn new(floor: Power) -> Self {
        IdleDevice { floor }
    }
}

impl CappedDevice for IdleDevice {
    fn advance(&mut self, from: SimTime, to: SimTime, effective_cap: Power) -> Energy {
        let dt = to.saturating_since(from);
        Energy::from_power(self.floor.min(effective_cap), dt)
    }

    fn demand(&self, _at: SimTime) -> Power {
        self.floor
    }
}

/// A device whose demand steps through a fixed schedule of
/// `(until_time, demand)` segments — handy for scripting decider scenarios in
/// tests (e.g. "hungry for 5 s, then idle").
#[derive(Clone, Debug)]
pub struct StepDevice {
    /// Sorted `(segment_end, demand)` pairs; demand of the last segment
    /// continues forever.
    steps: Vec<(SimTime, Power)>,
}

impl StepDevice {
    /// Build from `(segment_end, demand)` pairs. Panics if `steps` is empty
    /// or segment ends are not strictly increasing.
    pub fn new(steps: Vec<(SimTime, Power)>) -> Self {
        assert!(!steps.is_empty(), "StepDevice needs at least one segment");
        for w in steps.windows(2) {
            assert!(w[0].0 < w[1].0, "StepDevice segments must be increasing");
        }
        StepDevice { steps }
    }

    fn demand_in_segment(&self, t: SimTime) -> Power {
        for &(end, d) in &self.steps {
            if t < end {
                return d;
            }
        }
        self.steps.last().expect("non-empty").1
    }
}

impl CappedDevice for StepDevice {
    fn advance(&mut self, from: SimTime, to: SimTime, effective_cap: Power) -> Energy {
        let mut energy = Energy::ZERO;
        let mut cursor = from;
        while cursor < to {
            let demand = self.demand_in_segment(cursor);
            // End of the current segment, or `to`, whichever is sooner.
            let seg_end = self
                .steps
                .iter()
                .map(|&(end, _)| end)
                .find(|&end| end > cursor)
                .unwrap_or(SimTime::MAX)
                .min(to);
            let dt: SimDuration = seg_end.saturating_since(cursor);
            energy += Energy::from_power(demand.min(effective_cap), dt);
            cursor = seg_end;
        }
        energy
    }

    fn demand(&self, at: SimTime) -> Power {
        self.demand_in_segment(at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(x: u64) -> Power {
        Power::from_watts_u64(x)
    }

    #[test]
    fn constant_device_respects_cap() {
        let mut d = ConstantDevice::new(w(150));
        let e = d.advance(SimTime::ZERO, SimTime::from_secs(2), w(100));
        assert_eq!(e, Energy::from_joules_u64(200)); // capped at 100 W
        let e = d.advance(SimTime::from_secs(2), SimTime::from_secs(3), w(200));
        assert_eq!(e, Energy::from_joules_u64(150)); // demand-limited
    }

    #[test]
    fn idle_device_stays_at_floor() {
        let mut d = IdleDevice::new(w(30));
        let e = d.advance(SimTime::ZERO, SimTime::from_secs(10), w(120));
        assert_eq!(e, Energy::from_joules_u64(300));
        assert_eq!(d.demand(SimTime::from_secs(5)), w(30));
    }

    #[test]
    fn step_device_transitions() {
        // 100 W until t=2s, then 20 W forever.
        let mut d = StepDevice::new(vec![
            (SimTime::from_secs(2), w(100)),
            (SimTime::from_secs(4), w(20)),
        ]);
        // Window straddles the step: 1s at 100 W + 2s at 20 W = 140 J.
        let e = d.advance(SimTime::from_secs(1), SimTime::from_secs(4), w(300));
        assert_eq!(e, Energy::from_joules_u64(140));
        // Past the last segment end, the final demand persists.
        let e = d.advance(SimTime::from_secs(4), SimTime::from_secs(6), w(300));
        assert_eq!(e, Energy::from_joules_u64(40));
    }

    #[test]
    fn step_device_demand_lookup() {
        let d = StepDevice::new(vec![
            (SimTime::from_secs(1), w(80)),
            (SimTime::from_secs(2), w(40)),
        ]);
        assert_eq!(d.demand(SimTime::ZERO), w(80));
        assert_eq!(d.demand(SimTime::from_nanos(999_999_999)), w(80));
        assert_eq!(d.demand(SimTime::from_secs(1)), w(40));
        assert_eq!(d.demand(SimTime::from_secs(100)), w(40));
    }

    #[test]
    #[should_panic(expected = "at least one segment")]
    fn empty_step_device_panics() {
        let _ = StepDevice::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "must be increasing")]
    fn non_monotone_steps_panic() {
        let _ = StepDevice::new(vec![
            (SimTime::from_secs(2), w(10)),
            (SimTime::from_secs(1), w(20)),
        ]);
    }

    #[test]
    fn zero_length_window_consumes_nothing() {
        let mut d = ConstantDevice::new(w(100));
        let t = SimTime::from_secs(1);
        assert_eq!(d.advance(t, t, w(100)), Energy::ZERO);
    }

    #[test]
    fn energy_never_exceeds_cap_times_dt() {
        let mut d = StepDevice::new(vec![
            (SimTime::from_secs(1), w(500)),
            (SimTime::from_secs(2), w(10)),
        ]);
        let cap = w(90);
        let e = d.advance(SimTime::ZERO, SimTime::from_secs(3), cap);
        let max = Energy::from_power(cap, SimDuration::from_secs(3));
        assert!(e <= max);
    }
}

impl<T: CappedDevice + ?Sized> CappedDevice for Box<T> {
    fn advance(&mut self, from: SimTime, to: SimTime, effective_cap: Power) -> Energy {
        (**self).advance(from, to, effective_cap)
    }

    fn demand(&self, at: SimTime) -> Power {
        (**self).demand(at)
    }
}

#[cfg(test)]
mod boxed_tests {
    use super::*;

    #[test]
    fn boxed_device_delegates() {
        let mut d: Box<dyn CappedDevice + Send> =
            Box::new(ConstantDevice::new(Power::from_watts_u64(120)));
        let e = d.advance(
            SimTime::ZERO,
            SimTime::from_secs(1),
            Power::from_watts_u64(100),
        );
        assert_eq!(e, Energy::from_joules_u64(100));
        assert_eq!(d.demand(SimTime::ZERO), Power::from_watts_u64(120));
    }
}
