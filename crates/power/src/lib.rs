//! Power measurement and capping substrate.
//!
//! The paper's only hardware requirement (§3.3): *"Penelope only requires an
//! interface through which power can be read and node-level powercaps can be
//! set."* That interface is [`PowerInterface`]. The production system used
//! Intel RAPL; this crate provides [`SimulatedRapl`], a faithful software
//! model of the documented RAPL dynamics (averaged-power readings, bounded
//! safe range, and an actuation lag — RAPL converges on a new cap in under
//! half a second, §4.5), plus simple devices for tests.
//!
//! The device *under* the cap is abstracted as a [`CappedDevice`]: something
//! that, given an effective cap over a time window, consumes energy and makes
//! progress. `penelope-workload` implements it for NPB-like application
//! profiles; this crate ships constant/stepped devices for unit testing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod device;
pub mod iface;
pub mod linux_rapl;
pub mod rapl;

pub use device::{CappedDevice, ConstantDevice, IdleDevice, StepDevice};
pub use iface::PowerInterface;
pub use linux_rapl::{LinuxRapl, RaplError};
pub use rapl::{RaplConfig, SimulatedRapl};
