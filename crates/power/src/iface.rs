//! The decider-facing power interface.

use penelope_units::{Power, PowerRange, SimTime};

/// Read power and set node-level powercaps — the full hardware contract a
/// Penelope local decider needs (§3.3).
///
/// Implementations must uphold two properties the system-wide invariant
/// depends on:
///
/// 1. **Caps bind.** The device never dissipates more than the cap in effect
///    (after the implementation's actuation lag).
/// 2. **Readings are averages.** [`read_power`](PowerInterface::read_power)
///    reports the average power dissipated since the *previous* call, which
///    is exactly the `getPowerReading()` of Algorithm 1.
pub trait PowerInterface {
    /// Average power dissipated since the previous `read_power` call
    /// (or since construction, for the first call). `now` is the virtual
    /// time of the call and must be monotonically non-decreasing.
    fn read_power(&mut self, now: SimTime) -> Power;

    /// Request a new node-level powercap. The cap is clamped into
    /// [`safe_range`](PowerInterface::safe_range) by the implementation; the
    /// *caller* (the decider) is responsible for accounting for any clamping
    /// so the budget stays conserved, which is why deciders clamp before
    /// calling this.
    fn set_cap(&mut self, cap: Power, now: SimTime);

    /// The most recently requested cap (the decider's `C_t`), regardless of
    /// whether the hardware has finished converging to it.
    fn cap(&self) -> Power;

    /// The safe operating range for caps on this node.
    fn safe_range(&self) -> PowerRange;
}
