//! A simulated RAPL power domain.

use penelope_testkit::rng::Rng;
use penelope_units::{Energy, Power, PowerRange, SimDuration, SimTime};

use crate::device::CappedDevice;
use crate::iface::PowerInterface;

/// Configuration of the simulated RAPL domain.
#[derive(Clone, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RaplConfig {
    /// Safe powercap range for the node.
    pub safe_range: PowerRange,
    /// Time for a newly requested cap to take effect. Zhang's measurement
    /// (cited in §4.5) puts RAPL convergence under 0.5 s; we default to
    /// 300 ms. Zero disables the lag.
    pub actuation_delay: SimDuration,
    /// Relative standard deviation of multiplicative Gaussian noise applied
    /// to power *readings* (not to actual consumption). Zero disables noise.
    pub read_noise_std: f64,
}

impl Default for RaplConfig {
    fn default() -> Self {
        RaplConfig {
            safe_range: PowerRange::default(),
            actuation_delay: SimDuration::from_millis(300),
            read_noise_std: 0.0,
        }
    }
}

/// Software model of an Intel-RAPL-style power domain wrapping a
/// [`CappedDevice`].
///
/// * `set_cap` requests a cap; the *effective* cap switches to the requested
///   value after [`RaplConfig::actuation_delay`] (a step-delay model of the
///   measured sub-half-second convergence). Requests are clamped into the
///   safe range, exactly as the MSR interface refuses out-of-range values.
/// * `read_power` integrates the device's consumption since the previous
///   read — RAPL exposes an energy counter, and dividing by the window is
///   precisely how real deciders obtain average power.
///
/// The effective cap is piecewise constant, so integration is exact and the
/// total energy ledger is deterministic for a given seed.
#[derive(Debug)]
pub struct SimulatedRapl<D> {
    device: D,
    cfg: RaplConfig,
    /// The cap most recently requested (clamped): the decider's `C_t`.
    requested_cap: Power,
    /// The cap the hardware is currently enforcing.
    effective_cap: Power,
    /// A pending cap change: `(applies_at, cap)`.
    pending: Option<(SimTime, Power)>,
    /// Device has been advanced up to this instant.
    advanced_to: SimTime,
    /// Start of the current read window.
    window_start: SimTime,
    /// Energy consumed in the current read window.
    window_energy: Energy,
    /// Lifetime energy consumed (diagnostics).
    total_energy: Energy,
}

impl<D: CappedDevice> SimulatedRapl<D> {
    /// Create a domain around `device` with the given initial cap (clamped
    /// into the safe range).
    pub fn new(device: D, initial_cap: Power, cfg: RaplConfig) -> Self {
        let cap = cfg.safe_range.clamp(initial_cap);
        SimulatedRapl {
            device,
            cfg,
            requested_cap: cap,
            effective_cap: cap,
            pending: None,
            advanced_to: SimTime::ZERO,
            window_start: SimTime::ZERO,
            window_energy: Energy::ZERO,
            total_energy: Energy::ZERO,
        }
    }

    /// Advance the device model to `now`, splitting the window at the
    /// pending-cap boundary so integration sees only constant caps.
    fn advance_to(&mut self, now: SimTime) {
        if now <= self.advanced_to {
            return;
        }
        if let Some((applies_at, cap)) = self.pending {
            if applies_at <= now {
                if applies_at > self.advanced_to {
                    let e = self
                        .device
                        .advance(self.advanced_to, applies_at, self.effective_cap);
                    self.window_energy += e;
                    self.total_energy += e;
                    self.advanced_to = applies_at;
                }
                self.effective_cap = cap;
                self.pending = None;
            }
        }
        let e = self
            .device
            .advance(self.advanced_to, now, self.effective_cap);
        self.window_energy += e;
        self.total_energy += e;
        self.advanced_to = now;
    }

    /// Read average power since the last read, applying read noise via `rng`.
    /// This is the seam used by the simulator, which owns per-node RNGs;
    /// [`PowerInterface::read_power`] (noise-free) delegates here.
    pub fn read_power_with<R: Rng + ?Sized>(&mut self, now: SimTime, rng: &mut R) -> Power {
        let raw = self.read_power_raw(now);
        if self.cfg.read_noise_std > 0.0 {
            // Box-Muller: two uniforms -> one standard normal.
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            raw.mul_f64((1.0 + self.cfg.read_noise_std * z).max(0.0))
        } else {
            raw
        }
    }

    fn read_power_raw(&mut self, now: SimTime) -> Power {
        self.advance_to(now);
        let dt = now.saturating_since(self.window_start);
        let avg = if dt.is_zero() {
            // Degenerate window: report the instantaneous draw.
            self.device.demand(now).min(self.effective_cap)
        } else {
            self.window_energy.average_power(dt)
        };
        self.window_start = now;
        self.window_energy = Energy::ZERO;
        avg
    }

    /// The cap the hardware is enforcing *right now* (lags the requested
    /// cap by up to the actuation delay).
    pub fn effective_cap(&self, now: SimTime) -> Power {
        match self.pending {
            Some((applies_at, cap)) if applies_at <= now => cap,
            _ => self.effective_cap,
        }
    }

    /// Lifetime energy consumed by the device.
    pub fn total_energy(&self) -> Energy {
        self.total_energy
    }

    /// Borrow the wrapped device.
    pub fn device(&self) -> &D {
        &self.device
    }

    /// Mutably borrow the wrapped device (e.g. to swap workloads).
    pub fn device_mut(&mut self) -> &mut D {
        &mut self.device
    }
}

impl<D: CappedDevice> PowerInterface for SimulatedRapl<D> {
    fn read_power(&mut self, now: SimTime) -> Power {
        self.read_power_raw(now)
    }

    fn set_cap(&mut self, cap: Power, now: SimTime) {
        self.advance_to(now);
        let clamped = self.cfg.safe_range.clamp(cap);
        self.requested_cap = clamped;
        if self.cfg.actuation_delay.is_zero() {
            self.effective_cap = clamped;
            self.pending = None;
        } else {
            self.pending = Some((now + self.cfg.actuation_delay, clamped));
        }
    }

    fn cap(&self) -> Power {
        self.requested_cap
    }

    fn safe_range(&self) -> PowerRange {
        self.cfg.safe_range
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{ConstantDevice, StepDevice};
    use penelope_testkit::rng::TestRng;
    use proptest::prelude::*;

    fn w(x: u64) -> Power {
        Power::from_watts_u64(x)
    }

    fn cfg_no_lag() -> RaplConfig {
        RaplConfig {
            safe_range: PowerRange::from_watts(10, 300),
            actuation_delay: SimDuration::ZERO,
            read_noise_std: 0.0,
        }
    }

    #[test]
    fn reading_is_average_since_last_read() {
        let mut rapl = SimulatedRapl::new(ConstantDevice::new(w(100)), w(200), cfg_no_lag());
        assert_eq!(rapl.read_power(SimTime::from_secs(1)), w(100));
        // Nothing changed: still 100 W.
        assert_eq!(rapl.read_power(SimTime::from_secs(2)), w(100));
    }

    #[test]
    fn cap_binds_consumption() {
        let mut rapl = SimulatedRapl::new(ConstantDevice::new(w(250)), w(120), cfg_no_lag());
        assert_eq!(rapl.read_power(SimTime::from_secs(1)), w(120));
    }

    #[test]
    fn set_cap_clamps_into_safe_range() {
        let mut rapl = SimulatedRapl::new(ConstantDevice::new(w(100)), w(120), cfg_no_lag());
        rapl.set_cap(w(5), SimTime::ZERO);
        assert_eq!(rapl.cap(), w(10));
        rapl.set_cap(w(999), SimTime::ZERO);
        assert_eq!(rapl.cap(), w(300));
    }

    #[test]
    fn initial_cap_is_clamped() {
        let rapl = SimulatedRapl::new(ConstantDevice::new(w(100)), w(1), cfg_no_lag());
        assert_eq!(rapl.cap(), w(10));
    }

    #[test]
    fn actuation_delay_holds_old_cap() {
        let cfg = RaplConfig {
            actuation_delay: SimDuration::from_millis(500),
            ..cfg_no_lag()
        };
        let mut rapl = SimulatedRapl::new(ConstantDevice::new(w(250)), w(100), cfg);
        // Raise the cap at t=0; for the first 500 ms the old 100 W cap holds.
        rapl.set_cap(w(200), SimTime::ZERO);
        assert_eq!(rapl.effective_cap(SimTime::from_millis(499)), w(100));
        assert_eq!(rapl.effective_cap(SimTime::from_millis(500)), w(200));
        // Average over 1 s: 0.5 s at 100 W + 0.5 s at 200 W = 150 W.
        assert_eq!(rapl.read_power(SimTime::from_secs(1)), w(150));
    }

    #[test]
    fn rapid_recap_overwrites_pending() {
        let cfg = RaplConfig {
            actuation_delay: SimDuration::from_millis(300),
            ..cfg_no_lag()
        };
        let mut rapl = SimulatedRapl::new(ConstantDevice::new(w(250)), w(100), cfg);
        rapl.set_cap(w(200), SimTime::ZERO);
        // Before the first request lands, request something else.
        rapl.set_cap(w(150), SimTime::from_millis(100));
        // 0..400ms: 100 W effective; from 400 ms: 150 W.
        assert_eq!(rapl.effective_cap(SimTime::from_millis(350)), w(100));
        assert_eq!(rapl.effective_cap(SimTime::from_millis(400)), w(150));
        assert_eq!(rapl.cap(), w(150));
    }

    #[test]
    fn degenerate_read_window_reports_instantaneous() {
        let mut rapl = SimulatedRapl::new(ConstantDevice::new(w(90)), w(120), cfg_no_lag());
        let t = SimTime::from_secs(3);
        let _ = rapl.read_power(t);
        assert_eq!(rapl.read_power(t), w(90));
    }

    #[test]
    fn total_energy_accumulates() {
        let mut rapl = SimulatedRapl::new(ConstantDevice::new(w(100)), w(100), cfg_no_lag());
        let _ = rapl.read_power(SimTime::from_secs(2));
        let _ = rapl.read_power(SimTime::from_secs(5));
        assert_eq!(rapl.total_energy(), Energy::from_joules_u64(500));
    }

    #[test]
    fn step_device_through_rapl() {
        // App draws 200 W for 1 s then idles at 20 W; cap is 150 W.
        let dev = StepDevice::new(vec![
            (SimTime::from_secs(1), w(200)),
            (SimTime::from_secs(2), w(20)),
        ]);
        let mut rapl = SimulatedRapl::new(dev, w(150), cfg_no_lag());
        assert_eq!(rapl.read_power(SimTime::from_secs(1)), w(150)); // capped
        assert_eq!(rapl.read_power(SimTime::from_secs(2)), w(20)); // idle
    }

    #[test]
    fn read_noise_perturbs_but_preserves_scale() {
        let cfg = RaplConfig {
            read_noise_std: 0.05,
            ..cfg_no_lag()
        };
        let mut rapl = SimulatedRapl::new(ConstantDevice::new(w(100)), w(200), cfg);
        let mut rng = TestRng::seed_from_u64(42);
        let mut sum = 0.0;
        let n = 200;
        for i in 1..=n {
            let p = rapl.read_power_with(SimTime::from_secs(i), &mut rng);
            sum += p.as_watts();
            // 5-sigma bound: no reading should stray far from 100 W.
            assert!(p.as_watts() > 70.0 && p.as_watts() < 130.0, "reading {p}");
        }
        let mean = sum / n as f64;
        assert!((mean - 100.0).abs() < 2.0, "noisy mean {mean}");
    }

    #[test]
    fn noise_disabled_is_deterministic() {
        let mut rapl = SimulatedRapl::new(ConstantDevice::new(w(100)), w(200), cfg_no_lag());
        let mut rng = TestRng::seed_from_u64(1);
        assert_eq!(
            rapl.read_power_with(SimTime::from_secs(1), &mut rng),
            w(100)
        );
    }

    proptest! {
        #[test]
        fn consumption_never_exceeds_effective_cap(
            demand_w in 1u64..400,
            cap_w in 1u64..400,
            secs in 1u64..100,
        ) {
            let cfg = cfg_no_lag();
            let cap = cfg.safe_range.clamp(w(cap_w));
            let mut rapl = SimulatedRapl::new(ConstantDevice::new(w(demand_w)), w(cap_w), cfg);
            let reading = rapl.read_power(SimTime::from_secs(secs));
            prop_assert!(reading <= cap);
            prop_assert!(reading <= w(demand_w));
        }

        #[test]
        fn split_reads_integrate_like_one(
            demand_w in 1u64..400,
            a in 1u64..50,
            b in 1u64..50,
        ) {
            // Reading at t=a then t=a+b must account for the same energy as
            // one read at t=a+b.
            let mk = || SimulatedRapl::new(ConstantDevice::new(w(demand_w)), w(300), cfg_no_lag());
            let mut one = mk();
            let _ = one.read_power(SimTime::from_secs(a + b));
            let mut two = mk();
            let _ = two.read_power(SimTime::from_secs(a));
            let _ = two.read_power(SimTime::from_secs(a + b));
            prop_assert_eq!(one.total_energy(), two.total_energy());
        }
    }
}
