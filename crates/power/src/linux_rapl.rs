//! Real Intel RAPL via the Linux `powercap` sysfs interface.
//!
//! This is the deployment backend: on a Linux machine with
//! `/sys/class/powercap/intel-rapl:*` domains (and permissions to write the
//! power-limit constraint files), [`LinuxRapl`] implements the same
//! [`PowerInterface`] the deciders run against in simulation — read average
//! power since the last read, set a node-level cap — by
//!
//! * summing the monotonically increasing `energy_uj` counters of the
//!   selected package domains (handling counter wraparound via
//!   `max_energy_range_uj`), and
//! * splitting a requested node-level cap evenly across the packages'
//!   `constraint_0_power_limit_uw` files, exactly how the paper applies one
//!   logical cap to a dual-socket node.
//!
//! The sysfs root is injectable, so the protocol logic (domain discovery,
//! wrap handling, cap splitting, clamping) is fully unit-tested against a
//! synthetic tree without hardware. A real cluster deployment needs only
//! `LinuxRapl::discover()` and root (or `CAP_SYS_ADMIN`-granted) access.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use penelope_units::{Power, PowerRange, SimTime};

use crate::iface::PowerInterface;

/// One RAPL package domain (`intel-rapl:N`).
#[derive(Clone, Debug)]
struct Domain {
    /// Directory containing `energy_uj` etc.
    dir: PathBuf,
    /// Wraparound modulus of the energy counter, microjoules.
    max_energy_uj: u64,
    /// Last raw counter value seen.
    last_energy_uj: u64,
}

/// Errors from the sysfs backend.
#[derive(Debug)]
pub enum RaplError {
    /// The powercap class directory is missing (no RAPL support / not Linux).
    NoPowercap(PathBuf),
    /// No package domains were found under the class directory.
    NoDomains(PathBuf),
    /// A sysfs read/write failed (typically permissions on the limit file).
    Io(PathBuf, io::Error),
    /// A sysfs file held something unparsable.
    Parse(PathBuf, String),
}

impl std::fmt::Display for RaplError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RaplError::NoPowercap(p) => write!(f, "no powercap interface at {}", p.display()),
            RaplError::NoDomains(p) => {
                write!(f, "no intel-rapl package domains under {}", p.display())
            }
            RaplError::Io(p, e) => write!(f, "sysfs I/O on {}: {e}", p.display()),
            RaplError::Parse(p, s) => write!(f, "unparsable sysfs value in {}: {s:?}", p.display()),
        }
    }
}

impl std::error::Error for RaplError {}

fn read_u64(path: &Path) -> Result<u64, RaplError> {
    let text = fs::read_to_string(path).map_err(|e| RaplError::Io(path.to_path_buf(), e))?;
    text.trim()
        .parse()
        .map_err(|_| RaplError::Parse(path.to_path_buf(), text.trim().to_string()))
}

fn write_u64(path: &Path, value: u64) -> Result<(), RaplError> {
    fs::write(path, format!("{value}\n")).map_err(|e| RaplError::Io(path.to_path_buf(), e))
}

/// A node-level power domain backed by the Linux powercap sysfs tree.
#[derive(Debug)]
pub struct LinuxRapl {
    domains: Vec<Domain>,
    safe_range: PowerRange,
    requested_cap: Power,
    /// Accumulated energy (µJ) since the last `read_power`.
    window_energy_uj: u128,
    /// Timestamp of the last `read_power`.
    window_start: SimTime,
}

impl LinuxRapl {
    /// The production sysfs root.
    pub const DEFAULT_ROOT: &'static str = "/sys/class/powercap";

    /// Discover package domains under the default sysfs root.
    pub fn discover(safe_range: PowerRange) -> Result<Self, RaplError> {
        Self::discover_at(Path::new(Self::DEFAULT_ROOT), safe_range)
    }

    /// Discover package domains under an explicit root (tests inject a
    /// synthetic tree here).
    ///
    /// Package domains are direct children named `intel-rapl:<n>` (socket
    /// packages); subdomains like `intel-rapl:<n>:<m>` (core/dram planes)
    /// are intentionally skipped — the paper caps whole sockets.
    pub fn discover_at(root: &Path, safe_range: PowerRange) -> Result<Self, RaplError> {
        let entries = fs::read_dir(root).map_err(|_| RaplError::NoPowercap(root.to_path_buf()))?;
        let mut domains = Vec::new();
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if !name.starts_with("intel-rapl:") || name.matches(':').count() != 1 {
                continue;
            }
            let dir = entry.path();
            let max_energy_uj = read_u64(&dir.join("max_energy_range_uj"))?;
            let last_energy_uj = read_u64(&dir.join("energy_uj"))?;
            domains.push(Domain {
                dir,
                max_energy_uj,
                last_energy_uj,
            });
        }
        if domains.is_empty() {
            return Err(RaplError::NoDomains(root.to_path_buf()));
        }
        // Deterministic domain order regardless of readdir order.
        domains.sort_by(|a, b| a.dir.cmp(&b.dir));
        let requested_cap = Self::read_total_cap(&domains).unwrap_or(safe_range.max());
        Ok(LinuxRapl {
            domains,
            safe_range,
            requested_cap,
            window_energy_uj: 0,
            window_start: SimTime::ZERO,
        })
    }

    fn read_total_cap(domains: &[Domain]) -> Result<Power, RaplError> {
        let mut total = Power::ZERO;
        for d in domains {
            let uw = read_u64(&d.dir.join("constraint_0_power_limit_uw"))?;
            total += Power::from_milliwatts(uw / 1000);
        }
        Ok(total)
    }

    /// Number of package domains (sockets) found.
    pub fn packages(&self) -> usize {
        self.domains.len()
    }

    /// Accumulate energy deltas since the previous poll, handling counter
    /// wraparound. Can be called more often than `read_power` to bound the
    /// wrap window (RAPL counters wrap in minutes under load).
    pub fn poll_energy(&mut self) -> Result<(), RaplError> {
        for d in &mut self.domains {
            let now = read_u64(&d.dir.join("energy_uj"))?;
            let delta = if now >= d.last_energy_uj {
                now - d.last_energy_uj
            } else {
                // Counter wrapped: modulus is max_energy_range_uj.
                now + (d.max_energy_uj - d.last_energy_uj)
            };
            d.last_energy_uj = now;
            self.window_energy_uj += u128::from(delta);
        }
        Ok(())
    }

    /// Fallible flavour of [`PowerInterface::read_power`].
    pub fn try_read_power(&mut self, now: SimTime) -> Result<Power, RaplError> {
        self.poll_energy()?;
        let dt = now.saturating_since(self.window_start);
        let avg = if dt.is_zero() {
            Power::ZERO
        } else {
            // µJ / ns = kW; scale to mW: mW = µJ * 1e6 / ns.
            let mw = self.window_energy_uj * 1_000_000 / u128::from(dt.as_nanos());
            Power::from_milliwatts(mw.min(u128::from(u64::MAX)) as u64)
        };
        self.window_start = now;
        self.window_energy_uj = 0;
        Ok(avg)
    }

    /// Fallible flavour of [`PowerInterface::set_cap`]: clamps into the safe
    /// range and splits the node cap evenly across package constraint files.
    pub fn try_set_cap(&mut self, cap: Power) -> Result<(), RaplError> {
        let clamped = self.safe_range.clamp(cap);
        self.requested_cap = clamped;
        let (share, rem) = clamped.split(self.domains.len() as u64);
        for (i, d) in self.domains.iter().enumerate() {
            let extra = if (i as u64) < rem.milliwatts() { 1 } else { 0 };
            let uw = (share.milliwatts() + extra) * 1000;
            write_u64(&d.dir.join("constraint_0_power_limit_uw"), uw)?;
        }
        Ok(())
    }
}

impl PowerInterface for LinuxRapl {
    /// Infallible wrapper: on a transient sysfs error, reports zero power
    /// (the decider will classify the node as having excess, the safe
    /// direction — it can only give power away, never overdraw).
    fn read_power(&mut self, now: SimTime) -> Power {
        self.try_read_power(now).unwrap_or(Power::ZERO)
    }

    /// Infallible wrapper: a failed write leaves the previous hardware cap
    /// in force, which is always a cap that was valid under the budget.
    fn set_cap(&mut self, cap: Power, _now: SimTime) {
        let _ = self.try_set_cap(cap);
    }

    fn cap(&self) -> Power {
        self.requested_cap
    }

    fn safe_range(&self) -> PowerRange {
        self.safe_range
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build a synthetic powercap tree with `n` package domains plus a
    /// decoy subdomain, returning its root.
    fn fake_tree(n: usize) -> PathBuf {
        let root =
            std::env::temp_dir().join(format!("penelope-rapl-test-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        for i in 0..n {
            let d = root.join(format!("intel-rapl:{i}"));
            fs::create_dir_all(&d).unwrap();
            fs::write(d.join("energy_uj"), "1000000\n").unwrap();
            fs::write(d.join("max_energy_range_uj"), "262143328850\n").unwrap();
            fs::write(d.join("constraint_0_power_limit_uw"), "100000000\n").unwrap();
            // A core-plane subdomain that must be skipped.
            let sub = root.join(format!("intel-rapl:{i}:0"));
            fs::create_dir_all(&sub).unwrap();
            fs::write(sub.join("energy_uj"), "1\n").unwrap();
        }
        // An unrelated entry that must be ignored.
        fs::create_dir_all(root.join("dtpm")).unwrap();
        root
    }

    fn set_energy(root: &Path, pkg: usize, uj: u64) {
        fs::write(
            root.join(format!("intel-rapl:{pkg}")).join("energy_uj"),
            format!("{uj}\n"),
        )
        .unwrap();
    }

    fn range() -> PowerRange {
        PowerRange::from_watts(80, 300)
    }

    #[test]
    fn discovers_only_package_domains() {
        let root = fake_tree(2);
        let rapl = LinuxRapl::discover_at(&root, range()).unwrap();
        assert_eq!(rapl.packages(), 2);
        // Initial cap read back from the constraint files: 2 × 100 W.
        assert_eq!(rapl.cap(), Power::from_watts_u64(200));
    }

    #[test]
    fn missing_root_is_no_powercap() {
        let err = LinuxRapl::discover_at(Path::new("/nonexistent-penelope"), range());
        assert!(matches!(err, Err(RaplError::NoPowercap(_))));
    }

    #[test]
    fn empty_tree_is_no_domains() {
        let root = std::env::temp_dir().join(format!("penelope-rapl-empty-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).unwrap();
        let err = LinuxRapl::discover_at(&root, range());
        assert!(matches!(err, Err(RaplError::NoDomains(_))));
    }

    #[test]
    fn reads_average_power_from_energy_counters() {
        let root = fake_tree(2);
        let mut rapl = LinuxRapl::discover_at(&root, range()).unwrap();
        let _ = rapl.try_read_power(SimTime::ZERO).unwrap();
        // Each package consumes 50 J over 1 s → 100 W node-level.
        set_energy(&root, 0, 1_000_000 + 50_000_000);
        set_energy(&root, 1, 1_000_000 + 50_000_000);
        let p = rapl.try_read_power(SimTime::from_secs(1)).unwrap();
        assert_eq!(p, Power::from_watts_u64(100));
    }

    #[test]
    fn handles_counter_wraparound() {
        let root = fake_tree(1);
        let mut rapl = LinuxRapl::discover_at(&root, range()).unwrap();
        let _ = rapl.try_read_power(SimTime::ZERO).unwrap();
        // Counter wraps: new value below old; modulus 262143328850.
        // Consumed = (new + max - old) = 500 + 262143328850 - 1000000.
        set_energy(&root, 0, 500);
        let p = rapl.try_read_power(SimTime::from_secs(262)).unwrap();
        // ≈ 262142.33 J over 262 s ≈ 1000.5 W... sanity: within 1% of 1000 W.
        let w = p.as_watts();
        assert!((w - 1000.5).abs() < 10.0, "wrapped power {w}");
    }

    #[test]
    fn split_reads_accumulate_like_one() {
        let root = fake_tree(1);
        let mut rapl = LinuxRapl::discover_at(&root, range()).unwrap();
        let _ = rapl.try_read_power(SimTime::ZERO).unwrap();
        set_energy(&root, 0, 1_000_000 + 30_000_000);
        rapl.poll_energy().unwrap(); // mid-window poll (wrap bounding)
        set_energy(&root, 0, 1_000_000 + 60_000_000);
        let p = rapl.try_read_power(SimTime::from_secs(1)).unwrap();
        assert_eq!(p, Power::from_watts_u64(60));
    }

    #[test]
    fn set_cap_splits_evenly_and_clamps() {
        let root = fake_tree(2);
        let mut rapl = LinuxRapl::discover_at(&root, range()).unwrap();
        rapl.try_set_cap(Power::from_watts_u64(250)).unwrap();
        assert_eq!(rapl.cap(), Power::from_watts_u64(250));
        let read = |i: usize| {
            read_u64(
                &root
                    .join(format!("intel-rapl:{i}"))
                    .join("constraint_0_power_limit_uw"),
            )
            .unwrap()
        };
        assert_eq!(read(0), 125_000_000);
        assert_eq!(read(1), 125_000_000);
        // Clamp below the safe floor.
        rapl.try_set_cap(Power::from_watts_u64(10)).unwrap();
        assert_eq!(rapl.cap(), Power::from_watts_u64(80));
        assert_eq!(read(0) + read(1), 80_000_000);
    }

    #[test]
    fn infallible_interface_degrades_gracefully() {
        let root = fake_tree(1);
        let mut rapl = LinuxRapl::discover_at(&root, range()).unwrap();
        // Destroy the tree: reads report zero (the safe direction), writes
        // are dropped, and the process does not panic.
        fs::remove_dir_all(&root).unwrap();
        assert_eq!(rapl.read_power(SimTime::from_secs(1)), Power::ZERO);
        rapl.set_cap(Power::from_watts_u64(120), SimTime::from_secs(1));
        assert_eq!(rapl.safe_range(), range());
    }

    #[test]
    fn zero_length_window_reports_zero() {
        let root = fake_tree(1);
        let mut rapl = LinuxRapl::discover_at(&root, range()).unwrap();
        let t = SimTime::from_secs(5);
        let _ = rapl.try_read_power(t).unwrap();
        assert_eq!(rapl.try_read_power(t).unwrap(), Power::ZERO);
    }
}
