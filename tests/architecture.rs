//! Architectural invariant: the protocol automaton lives in
//! `penelope-core` and nowhere else. The substrates (simulator, threaded
//! runtime, UDP daemon) and the CLI are *drivers* — they pump
//! `EngineInput`s and execute `EngineOutput`s, but they never branch on
//! protocol state themselves. This test denies the four identifiers that
//! historically marked inlined protocol logic (escrow bookkeeping,
//! suspicion-gossip merging, seq-epoch staleness, grant dedup) outside
//! the core crate, so the triplication the engine collapsed cannot creep
//! back in one convenient shortcut at a time.

use std::fs;
use std::path::{Path, PathBuf};

/// Identifiers whose presence outside `penelope-core` means a driver has
/// re-grown protocol logic.
const DENIED: &[&str] = &[
    "GrantEscrow",
    "observe_digest",
    "is_stale_grant",
    "applied_seqs",
];

/// Source trees that must stay protocol-free.
const DRIVER_TREES: &[&str] = &[
    "crates/sim/src",
    "crates/runtime/src",
    "crates/daemon/src",
    "src",
    "examples",
];

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in fs::read_dir(dir).expect("driver source tree exists") {
        let path = entry.expect("readable dir entry").path();
        if path.is_dir() {
            rust_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Whole-identifier search: `GrantEscrow` must not match `GrantEscrowed`
/// (the trace event drivers legitimately mention in comments and tests).
fn contains_identifier(haystack: &str, ident: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = haystack[from..].find(ident) {
        let start = from + pos;
        let end = start + ident.len();
        let before_ok = haystack[..start]
            .chars()
            .next_back()
            .is_none_or(|c| !is_ident_char(c));
        let after_ok = haystack[end..]
            .chars()
            .next()
            .is_none_or(|c| !is_ident_char(c));
        if before_ok && after_ok {
            return true;
        }
        from = end;
    }
    false
}

#[test]
fn protocol_state_machinery_stays_inside_penelope_core() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut files = Vec::new();
    for tree in DRIVER_TREES {
        rust_sources(&root.join(tree), &mut files);
    }
    assert!(
        files.len() >= 5,
        "suspiciously few driver sources found ({}); tree layout changed?",
        files.len()
    );

    let mut violations = Vec::new();
    for path in &files {
        let text = fs::read_to_string(path).expect("readable source file");
        for ident in DENIED {
            for (lineno, line) in text.lines().enumerate() {
                if contains_identifier(line, ident) {
                    violations.push(format!(
                        "{}:{}: `{}`",
                        path.strip_prefix(root).unwrap_or(path).display(),
                        lineno + 1,
                        ident
                    ));
                }
            }
        }
    }
    assert!(
        violations.is_empty(),
        "protocol logic leaked out of penelope-core — route it through \
         NodeEngine::handle instead:\n  {}",
        violations.join("\n  ")
    );
}

#[test]
fn identifier_matching_respects_word_boundaries() {
    assert!(contains_identifier(
        "let e = GrantEscrow::new();",
        "GrantEscrow"
    ));
    assert!(!contains_identifier(
        "EventKind::GrantEscrowed { .. }",
        "GrantEscrow"
    ));
    assert!(contains_identifier(
        "x.observe_digest(now)",
        "observe_digest"
    ));
    assert!(!contains_identifier(
        "pre_observe_digest_hook()",
        "observe_digest"
    ));
    assert!(contains_identifier("applied_seqs", "applied_seqs"));
}
