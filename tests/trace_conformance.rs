//! Event-level conformance: the structured protocol-event streams the
//! substrates emit through the `Observer` API.
//!
//! Three layers of checking, strongest first:
//!
//! 1. **Stream equality** — on an idealized scenario (zero message
//!    latency, zero service time, zero tick jitter, exact power meters)
//!    the simulator and the lockstep threaded runtime must emit *equal*
//!    normalized protocol-event streams for the same seed: same events,
//!    same per-node order, timestamps erased.
//! 2. **Stream invariants** — every `GrantApplied` pairs with exactly one
//!    `RequestServed`, and urgency raise/clear strictly alternate per
//!    pool, on every substrate's stream.
//! 3. **Fold agreement** — turnaround, redistribution and oscillation
//!    computed as pure folds over the event stream must agree with the
//!    summary statistics the simulator accumulates inline.

use std::sync::Arc;

use penelope::conformance::{LockstepRuntime, SimSubstrate};
use penelope::prelude::*;
use penelope_core::DeciderPolicy;
use penelope_testkit::conformance::{FaultSpec, PhaseSpec, Scenario, WorkloadSpec};
use penelope_testkit::events::{
    check_grant_served_pairing, check_urgency_alternation, normalize_protocol,
};
use penelope_trace::{validate_jsonl, EventKind, JsonlObserver, RingBufferObserver};

fn watts(w: u64) -> Power {
    Power::from_watts_u64(w)
}

/// A two-node scenario with exact meters: one node hungry from the
/// start, one light-then-hungry, so deposits, take-local, peer requests,
/// urgency and grants all occur — while each pool has exactly one
/// possible requester, keeping serve order deterministic across
/// substrates.
fn ideal_scenario(seed: u64) -> Scenario {
    Scenario {
        name: "event-stream".into(),
        seed,
        nodes: 2,
        budget_per_node: watts(160),
        safe: PowerRange::from_watts(80, 300),
        periods: 10,
        workloads: vec![
            WorkloadSpec {
                phases: vec![PhaseSpec {
                    demand: watts(220),
                    secs: 60.0,
                }],
            },
            WorkloadSpec {
                phases: vec![
                    PhaseSpec {
                        demand: watts(100),
                        secs: 4.0,
                    },
                    PhaseSpec {
                        demand: watts(210),
                        secs: 60.0,
                    },
                ],
            },
        ],
        fault: FaultSpec::None,
        read_noise: 0.0,
        policy: DeciderPolicy::default(),
    }
}

#[test]
fn sim_and_lockstep_emit_identical_protocol_streams() {
    for seed in [7, 1234] {
        let scenario = ideal_scenario(seed);
        let sim_ring = Arc::new(RingBufferObserver::unbounded());
        let rt_ring = Arc::new(RingBufferObserver::unbounded());
        SimSubstrate::run_observed_ideal(&scenario, SharedObserver::from(sim_ring.clone()))
            .expect("sim run");
        LockstepRuntime::run_observed(&scenario, SharedObserver::from(rt_ring.clone()))
            .expect("lockstep run");

        // The sim's `advance_to(periods * PERIOD)` also fires the tick
        // sitting exactly on the final boundary — an extra period the
        // lockstep loop never starts. Compare the complete periods.
        let cut = |evs: Vec<TraceEvent>| -> Vec<TraceEvent> {
            evs.into_iter()
                .filter(|e| e.period < scenario.periods)
                .collect()
        };
        let sim_events = cut(sim_ring.events());
        let rt_events = cut(rt_ring.events());
        // The scenario must actually exercise the protocol, not match on
        // two empty streams.
        let count = |evs: &[TraceEvent], pred: fn(&EventKind) -> bool| {
            evs.iter().filter(|e| pred(&e.kind)).count()
        };
        assert!(
            count(&sim_events, |k| matches!(k, EventKind::RequestSent { .. })) > 0,
            "seed {seed}: no requests in the sim stream"
        );
        assert!(
            count(&sim_events, |k| matches!(k, EventKind::GrantApplied { .. })) > 0,
            "seed {seed}: no grants in the sim stream"
        );
        assert!(
            count(&sim_events, |k| matches!(k, EventKind::PoolDeposit { .. })) > 0,
            "seed {seed}: no deposits in the sim stream"
        );

        let sim_norm = normalize_protocol(&sim_events);
        let rt_norm = normalize_protocol(&rt_events);
        assert_eq!(
            sim_norm, rt_norm,
            "seed {seed}: sim and lockstep protocol-event streams diverge"
        );

        for (name, events) in [("sim", &sim_events), ("runtime", &rt_events)] {
            let v = check_grant_served_pairing(events);
            assert!(v.is_empty(), "seed {seed} {name}: {v:?}");
            let v = check_urgency_alternation(events);
            assert!(v.is_empty(), "seed {seed} {name}: {v:?}");
        }
    }
}

/// The §4.2-style nominal mix on four 160 W nodes: two modest DC-like
/// applications (nodes 0–1) and two power-hungry EP-like ones (nodes 2–3).
fn nominal_sim(observer: SharedObserver) -> ClusterSim {
    let profiles: Vec<_> = vec![npb::dc(), npb::dc(), npb::ep(), npb::ep()]
        .into_iter()
        .map(|p| p.scaled(0.05))
        .collect();
    ClusterSim::builder()
        .budget(watts(4 * 160))
        .workloads(profiles)
        .observer(observer)
        .seed(42)
        .build()
}

#[test]
fn folds_over_event_stream_agree_with_inline_summaries() {
    let ring = Arc::new(RingBufferObserver::unbounded());
    let mut sim = nominal_sim(SharedObserver::from(ring.clone()));
    let hungry = vec![NodeId::new(2), NodeId::new(3)];
    let total = watts(100);
    sim.track_redistribution(total, hungry.clone(), SimTime::ZERO);
    let report = sim.run(SimTime::from_secs(120));
    let events = ring.events();
    assert!(!events.is_empty());

    // Turnaround: same trips, same durations, same unanswered count.
    let fold = penelope_metrics::turnaround_from_events(&events);
    assert_eq!(fold.count(), report.turnaround.count());
    assert_eq!(fold.unanswered(), report.turnaround.unanswered());
    assert_eq!(fold.mean(), report.turnaround.mean());
    assert!(
        fold.count() > 0,
        "nominal run produced no grant round trips"
    );

    // Redistribution: same shifted total and crossing times.
    let inline = report.redistribution.expect("tracker installed");
    let fold = penelope_metrics::redistribution_from_events(&events, total, &hungry, SimTime::ZERO);
    assert_eq!(fold.shifted(), inline.shifted());
    assert_eq!(fold.fraction_shifted(), inline.fraction_shifted());
    assert_eq!(fold.median_time(), inline.median_time());
    assert_eq!(fold.total_time(), inline.total_time());
    assert!(
        !fold.shifted().is_zero(),
        "no power reached the hungry nodes"
    );

    // Oscillation: same per-node cap trajectories.
    let fold = penelope_metrics::oscillation_from_events(&events);
    assert_eq!(fold.samples(), report.oscillation.samples());
    assert_eq!(fold.reversals(), report.oscillation.reversals());
    assert_eq!(fold.total_up(), report.oscillation.total_up());
    assert_eq!(fold.total_down(), report.oscillation.total_down());
}

#[test]
fn jsonl_export_of_a_nominal_run_validates() {
    let path = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("nominal_trace.jsonl");
    let jsonl = Arc::new(JsonlObserver::create(&path).expect("create trace file"));
    let sim = nominal_sim(SharedObserver::from(jsonl.clone()));
    let report = sim.run(SimTime::from_secs(60));
    assert!(report.conservation_ok);
    jsonl.flush().expect("flush trace");

    let text = std::fs::read_to_string(&path).expect("read trace");
    let summary = validate_jsonl(&text).expect("trace validates");
    assert_eq!(summary.per_node.len(), 4);
    assert!(summary.events >= 4 * 59, "one CapActuated per node-period");
    std::fs::remove_file(&path).ok();
}
