//! Conservation under sustained random message loss.
//!
//! These tests drive the grant escrow/ack reliability layer: every peer
//! message (request, grant, ack) is dropped with a fixed probability on
//! every link, no node dies, and the peer protocol must still account for
//! every milliwatt — a dropped grant is escrowed by the granter and
//! re-credited to its pool, never booked as `lost`.
//!
//! The swept drop rate can be pinned from the environment for CI matrix
//! jobs: `PENELOPE_DROP_RATE=0.2 cargo test --test lossy_conformance`
//! runs only that rate instead of the full sweep.

use std::sync::Arc;

use penelope::conformance::{
    lossy_scenario, lossy_wire_scenario, LockstepRuntime, SimSubstrate, UdpDaemonSubstrate,
};
use penelope_testkit::conformance::{check_run, Scenario, Substrate};
use penelope_trace::{EventKind, RingBufferObserver, SharedObserver};

/// Drop rates (in permille) to sweep, or the single rate pinned by the
/// `PENELOPE_DROP_RATE` environment variable (as a probability, e.g.
/// "0.2").
fn drop_rates_permille() -> Vec<u16> {
    match std::env::var("PENELOPE_DROP_RATE") {
        Ok(v) => {
            let rate: f64 = v
                .parse()
                .unwrap_or_else(|e| panic!("PENELOPE_DROP_RATE {v:?} is not a probability: {e}"));
            assert!(
                (0.0..=1.0).contains(&rate),
                "PENELOPE_DROP_RATE {rate} outside [0, 1]"
            );
            vec![(rate * 1000.0).round() as u16]
        }
        Err(_) => vec![50, 200, 500],
    }
}

/// Run `scenario` on `substrate` and assert the full invariant set plus
/// the lossy-specific guarantees: `lost` is exactly zero in every
/// snapshot, every consistent cut sums to the initial budget, and the
/// end state drains back to exactly the budget.
fn assert_zero_peer_loss(scenario: &Scenario, substrate: &dyn Substrate) {
    let run = substrate
        .run(scenario)
        .unwrap_or_else(|e| panic!("{} failed to run {}: {e}", substrate.name(), scenario.name));

    let violations = check_run(scenario, &run);
    assert!(
        violations.is_empty(),
        "{} violated invariants on {} (seed {:#x}): {violations:#?}",
        substrate.name(),
        scenario.name,
        scenario.seed
    );

    for snap in &run.snapshots {
        assert!(
            snap.lost.is_zero(),
            "{} booked {:?} lost at period {} of {} (seed {:#x})",
            substrate.name(),
            snap.lost,
            snap.period,
            scenario.name,
            scenario.seed
        );
        if snap.consistent_cut {
            assert_eq!(
                snap.accounted_live(),
                scenario.cluster_budget(),
                "{} period {} does not conserve the budget (seed {:#x})",
                substrate.name(),
                snap.period,
                scenario.seed
            );
        }
    }
    assert_eq!(
        run.final_total,
        scenario.cluster_budget(),
        "{} final total drifted from the budget on {} (seed {:#x})",
        substrate.name(),
        scenario.name,
        scenario.seed
    );
}

#[test]
fn drop_rate_sweep_loses_zero_peer_power_on_sim_and_lockstep() {
    let sim = SimSubstrate;
    let runtime = LockstepRuntime;
    for drop_permille in drop_rates_permille() {
        let scenario = lossy_scenario(0x5EED_1055 + u64::from(drop_permille), drop_permille, 12);
        for substrate in [&sim as &dyn Substrate, &runtime] {
            assert_zero_peer_loss(&scenario, substrate);
        }
    }
}

#[test]
fn long_run_at_20_percent_loss_conserves_every_period() {
    // The §4.2-length acceptance run: 40 decision periods at the paper's
    // evaluated 20 % drop rate, on both deterministic substrates.
    let scenario = lossy_scenario(0x5EED_2042, 200, 40);
    assert_zero_peer_loss(&scenario, &SimSubstrate);
    assert_zero_peer_loss(&scenario, &LockstepRuntime);
}

#[test]
fn lossy_sim_actually_drops_and_escrows() {
    // Guard against the sweep passing vacuously: at 50 % loss the trace
    // must show real drops, real escrow activity, and at least one grant
    // reclaimed after its retransmit window also went dark.
    let scenario = lossy_scenario(0x5EED_3050, 500, 20);
    let ring = Arc::new(RingBufferObserver::unbounded());
    SimSubstrate::run_observed(&scenario, SharedObserver::from(ring.clone()))
        .expect("lossy sim runs");
    let events = ring.events();
    let count = |pred: &dyn Fn(&EventKind) -> bool| events.iter().filter(|e| pred(&e.kind)).count();

    let dropped = count(&|k| matches!(k, EventKind::MsgDropped { .. }));
    let escrowed = count(&|k| matches!(k, EventKind::GrantEscrowed { .. }));
    let reclaimed = count(&|k| matches!(k, EventKind::GrantReclaimed { .. }));
    assert!(dropped > 0, "no messages dropped at 50% loss");
    assert!(escrowed > 0, "no grants escrowed at 50% loss");
    assert!(
        reclaimed > 0,
        "no grants reclaimed at 50% loss over {} periods ({dropped} drops, {escrowed} escrows)",
        scenario.periods
    );
}

#[test]
fn lossy_lockstep_actually_drops_and_escrows() {
    let scenario = lossy_scenario(0x5EED_3051, 500, 20);
    let ring = Arc::new(RingBufferObserver::unbounded());
    LockstepRuntime::run_observed(&scenario, SharedObserver::from(ring.clone()))
        .expect("lossy lockstep runs");
    let events = ring.events();
    let dropped = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::MsgDropped { .. }))
        .count();
    let escrowed = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::GrantEscrowed { .. }))
        .count();
    assert!(dropped > 0, "no messages dropped at 50% loss");
    assert!(escrowed > 0, "no grants escrowed at 50% loss");
}

#[test]
fn daemon_lossy_leg_drops_real_datagrams_and_loses_no_power() {
    // The daemon substrate used to *silently ignore* the scenario's drop
    // rate — every "lossy" daemon run was lossless. Now the FaultySocket
    // shim drops real loopback datagrams, so this leg must show
    // non-vacuous drop counts while still conserving power: a grant the
    // shim reports dropped is escrowed as undelivered and reclaimed at
    // the deadline, so nothing is ever booked as lost.
    //
    // Bit-identical replay of the *drop schedule* per seed is pinned in
    // penelope-net's shim tests; here the wall clock decides how many
    // datagrams consume that schedule, so we assert the invariants and
    // non-vacuousness rather than an exact count.
    let scenario = lossy_scenario(0x5EED_DAE0, 200, 12);
    let run = UdpDaemonSubstrate
        .run(&scenario)
        .expect("daemon lossy leg runs");

    let violations = check_run(&scenario, &run);
    assert!(
        violations.is_empty(),
        "daemon violated invariants on {} (seed {:#x}): {violations:#?}",
        scenario.name,
        scenario.seed
    );

    let drops = run
        .injected_drops
        .expect("the daemon substrate counts injected drops");
    assert!(
        drops >= 1,
        "vacuous lossy daemon run: shim injected no drops at 200‰"
    );

    // Zero lost power under pure message loss: nothing died, so nothing
    // may be retired — on any snapshot.
    for snap in &run.snapshots {
        assert!(
            snap.lost.is_zero(),
            "daemon booked {:?} lost at period {} under pure loss",
            snap.lost,
            snap.period
        );
    }
    // Conservation on the free-running substrate: grants in flight at
    // shutdown may undercount the total, but it can never exceed the
    // budget.
    assert!(
        run.final_total <= scenario.cluster_budget(),
        "daemon minted power under loss: {:?} > {:?}",
        run.final_total,
        scenario.cluster_budget()
    );
}

#[test]
fn daemon_wire_faults_duplicate_delay_and_still_conserve() {
    // The reorder/duplication legs of the socket shim, previously never
    // exercised by any conformance scenario: 10 % loss, 15 % duplication,
    // up to 5 ms of per-datagram delay (so copies and slow originals
    // overtake later sends). Duplicate grants must be absorbed
    // idempotently — the engine's seq dedup plus the granter-side
    // acked-floor guard — and duplicate requests must never double-grant,
    // so the run must conserve power like any other lossy run.
    let scenario = lossy_wire_scenario(0x5EED_D0B1, 100, 150, 5, 12);
    let run = UdpDaemonSubstrate
        .run(&scenario)
        .expect("daemon wire-fault leg runs");

    let violations = check_run(&scenario, &run);
    assert!(
        violations.is_empty(),
        "daemon violated invariants on {} (seed {:#x}): {violations:#?}",
        scenario.name,
        scenario.seed
    );

    // Non-vacuity: all three fault legs must have actually fired. Before
    // these counters existed a mis-wired shim could silently run the
    // "reordering" sweep over a perfectly behaved wire.
    let duplicated = run
        .duplicated
        .expect("the daemon substrate counts shim duplications");
    let delayed = run
        .delayed
        .expect("the daemon substrate counts shim delays");
    let drops = run.injected_drops.expect("drop counting");
    assert!(
        duplicated >= 1,
        "vacuous duplication leg: shim duplicated nothing at 150‰"
    );
    assert!(delayed >= 1, "vacuous delay leg: shim delayed nothing");
    assert!(drops >= 1, "vacuous loss leg: shim dropped nothing at 100‰");

    // Pure wire faults kill nobody: nothing may ever be booked lost, and
    // duplicated grants must not mint power.
    for snap in &run.snapshots {
        assert!(
            snap.lost.is_zero(),
            "daemon booked {:?} lost at period {} under wire faults",
            snap.lost,
            snap.period
        );
    }
    assert!(
        run.final_total <= scenario.cluster_budget(),
        "daemon minted power under duplication: {:?} > {:?}",
        run.final_total,
        scenario.cluster_budget()
    );
}

#[test]
fn sim_and_lockstep_run_the_loss_leg_of_wire_faults() {
    // The deterministic substrates cannot reorder or duplicate, but they
    // must still honor the loss leg of a LossyWire spec (and conserve
    // exactly, as for plain Lossy).
    let scenario = lossy_wire_scenario(0x5EED_D0B2, 200, 150, 5, 12);
    for substrate in [&SimSubstrate as &dyn Substrate, &LockstepRuntime] {
        assert_zero_peer_loss(&scenario, substrate);
        let run = substrate.run(&scenario).expect("runs");
        assert!(
            run.injected_drops.expect("counted") >= 1,
            "{} ran the loss leg vacuously",
            substrate.name()
        );
        // Honest reporting: these transports cannot duplicate, and must
        // say so rather than report a fake zero.
        assert_eq!(run.duplicated, None);
        assert_eq!(run.delayed, None);
    }
}

#[test]
fn lossless_scenario_has_no_escrow_reclaims() {
    // With no loss every grant is acked promptly; escrow entries must be
    // released by acks, never by deadline expiry.
    let scenario = lossy_scenario(0x5EED_0000, 0, 10);
    let ring = Arc::new(RingBufferObserver::unbounded());
    SimSubstrate::run_observed(&scenario, SharedObserver::from(ring.clone()))
        .expect("lossless sim runs");
    let reclaimed = ring
        .events()
        .iter()
        .filter(|e| matches!(e.kind, EventKind::GrantReclaimed { .. }))
        .count();
    assert_eq!(reclaimed, 0, "grants reclaimed in a lossless run");
    assert_zero_peer_loss(&scenario, &SimSubstrate);
}
