//! Cross-crate integration: the public facade API end to end — profile
//! codec → simulator → metrics, DES vs threaded runtime agreement, and the
//! NPB suite running under all three systems.

use std::time::Duration;

use penelope::metrics::geometric_mean;
use penelope::prelude::*;
use penelope::runtime::{RuntimeConfig, ThreadedCluster};
use penelope::sim::ClusterConfig;
use penelope::workload::codec;

#[test]
fn profiles_roundtrip_through_codec_into_simulation() {
    // Serialize the suite, parse it back, and run the parsed profiles —
    // the "curated profiles" flow of the paper's scale study.
    let text = codec::format_profiles(&npb::all_profiles());
    let parsed = codec::parse_profiles(&text).expect("codec roundtrip");
    assert_eq!(parsed.len(), 9);
    let workloads: Vec<Profile> = parsed.into_iter().take(4).map(|p| p.scaled(0.05)).collect();
    let cfg = ClusterConfig::checked(SystemKind::Penelope, Power::from_watts_u64(4 * 160));
    let report = ClusterSim::new(cfg, workloads).run(SimTime::from_secs(600));
    assert!(report.conservation_ok);
    assert!(report.runtime_secs().is_some());
}

#[test]
fn all_three_systems_run_the_whole_suite() {
    // One node per NPB application (plus a repeat to make it even), under
    // each manager; everything finishes and dynamic systems do not lose to
    // Fair by more than the management overhead.
    let mut profiles: Vec<Profile> = npb::all_profiles();
    profiles.push(npb::dc());
    let profiles: Vec<Profile> = profiles.into_iter().map(|p| p.scaled(0.1)).collect();
    let budget = Power::from_watts_u64(10 * 160);
    let horizon = SimTime::from_secs(3000);

    let runtime = |system: SystemKind| -> f64 {
        let cfg = ClusterConfig::checked(system, budget);
        ClusterSim::new(cfg, profiles.clone())
            .run(horizon)
            .runtime_secs()
            .expect("finished")
    };
    let fair = runtime(SystemKind::Fair);
    let pen = runtime(SystemKind::Penelope);
    let slurm = runtime(SystemKind::Slurm);
    assert!(pen < fair * 1.05, "Penelope {pen}s vs Fair {fair}s");
    assert!(slurm < fair * 1.05, "SLURM {slurm}s vs Fair {fair}s");
}

#[test]
fn des_and_threaded_runtime_agree_on_who_wins() {
    // The same donor/recipient imbalance through both substrates: each
    // must show Penelope beating Fair. (Wall-clock and virtual time are
    // different units; the *comparison* is what must agree.)
    let perf = PerfModel::new(Power::from_watts_u64(60), 1.0);
    let donor = Profile::new(
        "donor",
        vec![Phase::new(Power::from_watts_u64(100), 1.0)],
        perf,
    );
    let rcpt = Profile::new(
        "rcpt",
        vec![Phase::new(Power::from_watts_u64(250), 1.0)],
        perf,
    );
    let budget = Power::from_watts_u64(2 * 160);

    // DES (virtual seconds; scale the work up so many decider periods fit).
    let scale = 40.0;
    let des_workloads = vec![donor.scaled(scale), rcpt.scaled(scale)];
    let des_runtime = |system: SystemKind| {
        let mut cfg = ClusterConfig::checked(system, budget);
        cfg.management_overhead = 0.0;
        ClusterSim::new(cfg, des_workloads.clone())
            .run(SimTime::from_secs(4000))
            .runtime_secs()
            .expect("finished")
    };
    let des_fair = des_runtime(SystemKind::Fair);
    let des_pen = des_runtime(SystemKind::Penelope);
    assert!(des_pen < des_fair, "DES: {des_pen} !< {des_fair}");

    // Threads (real milliseconds).
    let thr_workloads = vec![donor.clone(), rcpt.clone()];
    let fair = ThreadedCluster::run_fair(
        RuntimeConfig::fast(budget),
        thr_workloads.clone(),
        Duration::from_secs(20),
    );
    let pen = ThreadedCluster::run_penelope(
        RuntimeConfig::fast(budget),
        thr_workloads,
        Duration::from_secs(20),
    );
    let thr_fair = fair.makespan_secs().expect("fair finished");
    let thr_pen = pen.makespan_secs().expect("penelope finished");
    assert!(thr_pen < thr_fair, "threads: {thr_pen} !< {thr_fair}");
    assert!(pen.power_accounted());
}

#[test]
fn normalized_performance_pipeline() {
    // The metrics path used by Figs. 2-3, driven end to end over two pairs.
    let pairs = [(npb::dc(), npb::ep()), (npb::cg(), npb::ft())];
    let mut norms = Vec::new();
    for (a, b) in &pairs {
        let workloads: Vec<Profile> = (0..3)
            .map(|_| a.scaled(0.05))
            .chain((0..3).map(|_| b.scaled(0.05)))
            .collect();
        let budget = Power::from_watts_u64(6 * 140);
        let run = |system: SystemKind| {
            let cfg = ClusterConfig::checked(system, budget);
            ClusterSim::new(cfg, workloads.clone())
                .run(SimTime::from_secs(2000))
                .runtime_secs()
                .expect("finished")
        };
        norms.push(run(SystemKind::Fair) / run(SystemKind::Penelope));
    }
    let g = geometric_mean(&norms);
    assert!(g > 0.95, "Penelope badly under Fair: {g}");
    assert!(g < 2.0, "implausible speedup: {g}");
}

#[test]
fn fault_script_composition_end_to_end() {
    // Drop rate + partition + node kill + heal, all in one Penelope run.
    let profiles: Vec<Profile> = (0..6).map(|_| npb::lu().scaled(0.1)).collect();
    let mut cfg = ClusterConfig::checked(SystemKind::Penelope, Power::from_watts_u64(6 * 160));
    cfg.seed = 99;
    let mut sim = ClusterSim::new(cfg, profiles);
    let left: Vec<NodeId> = (0..3).map(NodeId::new).collect();
    let right: Vec<NodeId> = (3..6).map(NodeId::new).collect();
    sim.install_faults(
        &FaultScript::none()
            .at(SimTime::from_secs(2), FaultAction::SetDropRate(0.1))
            .at(
                SimTime::from_secs(5),
                FaultAction::Partition(vec![left, right]),
            )
            .at(SimTime::from_secs(10), FaultAction::Kill(NodeId::new(5)))
            .at(SimTime::from_secs(15), FaultAction::Heal),
    );
    let report = sim.run(SimTime::from_secs(2000));
    assert!(report.conservation_ok);
    assert_eq!(report.dead, vec![NodeId::new(5)]);
    // Survivors finish despite the chaos.
    assert!(report.runtime_secs().is_some());
}
