//! Cross-substrate conformance: the same scenarios on the DES simulator,
//! the lockstep threaded runtime, and real UDP daemons, with the safety
//! invariants checked every period and sim↔runtime divergence bounded.
//!
//! These are the tentpole tests of the conformance harness: if any
//! substrate mints power, lets a cap escape the safe range, or unbalances
//! a pool ledger, the failure report carries the scenario's reproducing
//! seed.

use penelope::conformance::{
    node_fault_scenario, noisy_power_scenario, nominal_scenario, LockstepRuntime, SimSubstrate,
    UdpDaemonSubstrate,
};
use penelope::units::Power;
use penelope_core::DeciderPolicy;
use penelope_testkit::conformance::{
    check_run, run_conformance, DivergenceBound, FaultSpec, Invariant, NodeSnapshot, PhaseSpec,
    Scenario, Snapshot, Substrate, SubstrateRun, WorkloadSpec,
};

fn watts(w: u64) -> Power {
    Power::from_watts_u64(w)
}

/// Generous but meaningful: substrates share algorithms and seeds but not
/// event interleaving, so caps may drift within the operating regime; a
/// substrate collapsing to the 80 W floor or pinning at the 300 W ceiling
/// while the other holds ~160 W is what this must catch.
fn bound() -> DivergenceBound {
    DivergenceBound {
        max_cap_diff: watts(70),
        max_total_diff: watts(1),
    }
}

fn check_all_substrates(scenario: &Scenario) {
    let sim = SimSubstrate;
    let runtime = LockstepRuntime;
    let daemon = UdpDaemonSubstrate;
    let substrates: [&dyn Substrate; 3] = [&sim, &runtime, &daemon];
    // Divergence is bounded for the deterministic pair (sim vs lockstep
    // runtime); the free-running daemons run on a different clock and are
    // held to the invariants, not to trajectory agreement.
    let report = run_conformance(scenario, &substrates, &[(0, 1)], bound());
    report.assert_conformant();
    assert_eq!(report.substrates, ["sim", "runtime", "daemon"]);
}

#[test]
fn nominal_scenario_is_conformant_on_all_substrates() {
    check_all_substrates(&nominal_scenario(0x5EED_0001));
}

#[test]
fn node_fault_scenario_is_conformant_on_all_substrates() {
    check_all_substrates(&node_fault_scenario(0x5EED_0002));
}

#[test]
fn noisy_power_scenario_is_conformant_on_all_substrates() {
    check_all_substrates(&noisy_power_scenario(0x5EED_0003));
}

#[test]
fn fault_scenario_actually_kills_the_node_everywhere() {
    let scenario = node_fault_scenario(0x5EED_0004);
    for s in [&SimSubstrate as &dyn Substrate, &LockstepRuntime] {
        let run = s.run(&scenario).expect("substrate runs");
        assert!(
            !run.final_alive[1],
            "{}: node 1 should be dead at the end",
            s.name()
        );
        let last = run.snapshots.last().expect("snapshots");
        assert!(!last.nodes[1].alive);
        assert!(
            !last.lost.is_zero(),
            "{}: the killed node's holdings must be retired as lost",
            s.name()
        );
    }
}

#[test]
fn sim_consistent_cuts_report_in_flight_power() {
    // On a consistent cut the accounted total must equal the budget
    // *including* in-flight power — check the field is actually being fed
    // by running a scenario busy enough to have requests airborne.
    let scenario = nominal_scenario(0x5EED_0005);
    let run = SimSubstrate.run(&scenario).expect("sim runs");
    for snap in &run.snapshots {
        assert!(snap.consistent_cut);
        assert_eq!(
            snap.accounted_live() + snap.lost,
            scenario.cluster_budget(),
            "period {}",
            snap.period
        );
    }
}

// ---------------------------------------------------------------------
// The deliberately buggy substrate: double-applied grants
// ---------------------------------------------------------------------

/// A miniature two-node substrate whose transport re-applies every pool
/// grant twice — the classic retransmission-without-dedup conservation
/// bug. The pools themselves are the real `PowerPool` (and stay
/// internally balanced); the *system* mints power, which only the
/// cross-node conformance sums can see.
struct DoubleApplyBug;

impl Substrate for DoubleApplyBug {
    fn name(&self) -> &'static str {
        "double-apply"
    }

    fn run(&self, scenario: &Scenario) -> Result<SubstrateRun, String> {
        use penelope::core::{PoolConfig, PowerPool};
        let budget_each = scenario.budget_per_node;
        let mut donor_cap = budget_each;
        let mut taker_cap = budget_each;
        let mut pool = PowerPool::new(PoolConfig::default());
        let mut snapshots = Vec::new();
        for p in 0..scenario.periods {
            // Donor sheds 10 W into its pool (zero-sum, correct).
            let shed = watts(10).min(donor_cap);
            donor_cap -= shed;
            pool.deposit(shed);
            // Taker requests; the grant is debited once...
            let amount = pool.handle_request(false, Power::ZERO);
            // ...but the buggy transport delivers it twice.
            taker_cap = taker_cap + amount + amount;
            let row = |node, cap, pool: &PowerPool| NodeSnapshot {
                node,
                alive: true,
                cap,
                pool_available: pool.available(),
                pool_deposited: pool.total_deposited(),
                pool_granted: pool.total_granted() + pool.total_taken_local(),
                pool_drained: pool.total_drained(),
            };
            let empty = PowerPool::new(PoolConfig::default());
            snapshots.push(Snapshot {
                period: p,
                consistent_cut: true,
                in_flight: Power::ZERO,
                lost: Power::ZERO,
                nodes: vec![row(0, donor_cap, &pool), row(1, taker_cap, &empty)],
            });
        }
        Ok(SubstrateRun {
            substrate: self.name().into(),
            snapshots,
            final_caps: vec![donor_cap, taker_cap],
            final_alive: vec![true, true],
            final_total: donor_cap + taker_cap + pool.available(),
            injected_drops: None,
            send_attempts: None,
            duplicated: None,
            delayed: None,
        })
    }
}

#[test]
fn injected_double_grant_bug_is_caught_with_reproducing_seed() {
    let scenario = Scenario {
        name: "double-grant-injection".into(),
        seed: 0xBAD_5EED,
        nodes: 2,
        budget_per_node: watts(160),
        safe: penelope::units::PowerRange::from_watts(80, 400),
        periods: 6,
        workloads: vec![WorkloadSpec {
            phases: vec![PhaseSpec {
                demand: watts(100),
                secs: 60.0,
            }],
        }],
        fault: FaultSpec::None,
        read_noise: 0.0,
        policy: DeciderPolicy::default(),
    };
    let run = DoubleApplyBug.run(&scenario).expect("bug substrate runs");
    let violations = check_run(&scenario, &run);
    assert!(
        violations
            .iter()
            .any(|v| v.invariant == Invariant::NoMinting),
        "double-applied grants must read as minted power, got {violations:?}"
    );
    assert!(
        violations.iter().any(|v| v.invariant == Invariant::ZeroSum),
        "consistent cuts must also fail zero-sum, got {violations:?}"
    );
    // Every violation names the reproducing seed, and the human-readable
    // report surfaces it in hex.
    assert!(violations.iter().all(|v| v.seed == 0xBAD_5EED));
    let rendered = violations[0].to_string();
    assert!(
        rendered.contains("0x000000000bad5eed"),
        "rendered violation should carry the seed: {rendered}"
    );
    // The pools themselves stayed balanced — only cross-node accounting
    // exposes the bug, which is exactly why the harness checks it.
    assert!(
        !violations
            .iter()
            .any(|v| v.invariant == Invariant::PoolBalanced),
        "the pool ledger itself is consistent; the transport minted the power"
    );
}

#[test]
fn conformance_report_renders_failures_readably() {
    let scenario = Scenario {
        name: "render".into(),
        seed: 0xFACE,
        nodes: 2,
        budget_per_node: watts(160),
        safe: penelope::units::PowerRange::from_watts(80, 400),
        periods: 3,
        workloads: vec![WorkloadSpec {
            phases: vec![PhaseSpec {
                demand: watts(100),
                secs: 60.0,
            }],
        }],
        fault: FaultSpec::None,
        read_noise: 0.0,
        policy: DeciderPolicy::default(),
    };
    let bug = DoubleApplyBug;
    let substrates: [&dyn Substrate; 1] = [&bug];
    let report = run_conformance(&scenario, &substrates, &[], bound());
    assert!(!report.conformant());
    let rendered = report.render();
    assert!(rendered.contains("NoMinting"), "{rendered}");
    assert!(rendered.contains("seed=0x000000000000face"), "{rendered}");
}
