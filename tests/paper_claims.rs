//! End-to-end checks of the paper's headline claims, at smoke effort.
//! These run the same harness as the benches, so they guard the shapes the
//! figures depend on: who wins, by roughly what factor, where the
//! crossovers sit.

use penelope::experiments::scenarios::ScaleScenario;
use penelope::experiments::{faulty, nominal, overhead, scale, service, Effort};
use penelope::prelude::*;

#[test]
fn claim_nominal_near_equivalence() {
    // "SLURM and Penelope yield nearly the same mean performance gain over
    // Fair, with SLURM achieving only a 1.8% speedup over Penelope on
    // average" — and both beat Fair under tight caps.
    let fig2 = nominal::run_with_caps(Effort::Smoke, &[60, 80]);
    assert!(fig2.rows[0].slurm > 1.0);
    assert!(fig2.rows[0].penelope > 1.0);
    assert!(
        fig2.slurm_advantage_pct().abs() < 8.0,
        "not nearly-equivalent: {:+.2}%",
        fig2.slurm_advantage_pct()
    );
}

#[test]
fn claim_fault_tolerance_advantage() {
    // "In faulty environments Penelope improves mean application
    // performance by 8-15% over SLURM" (full effort reaches that band; at
    // smoke compression the gap shrinks but must stay clearly positive),
    // and faulty SLURM falls to or below the Fair baseline.
    let fig3 = faulty::run_with_caps(Effort::Smoke, &[60, 80]);
    assert!(
        fig3.penelope_advantage_pct() > 2.0,
        "fault advantage only {:+.2}%",
        fig3.penelope_advantage_pct()
    );
    assert!(
        fig3.overall_slurm < 1.02,
        "faulty SLURM should sit at/below Fair, got {}",
        fig3.overall_slurm
    );
}

#[test]
fn claim_overhead_small() {
    // "We observe an average of 1.3% overhead across all workloads."
    let o = overhead::run(Effort::Smoke);
    let mean = o.mean_overhead_pct();
    assert!(mean > 0.0 && mean < 3.0, "mean overhead {mean}%");
}

#[test]
fn claim_penelope_speeds_up_with_frequency() {
    // Fig. 4: "a relatively small increase in frequency causes a major
    // reduction in redistribution time for Penelope".
    let rows = scale::frequency_sweep(Effort::Smoke, &[1.0, 8.0]);
    assert!(
        rows[1].penelope.median_redist_s < rows[0].penelope.median_redist_s * 0.5,
        "no major reduction: {} -> {}",
        rows[0].penelope.median_redist_s,
        rows[1].penelope.median_redist_s
    );
}

#[test]
fn claim_slurm_server_saturates_at_high_frequency() {
    // Fig. 5/7: sustained overload makes the server drop packets, so SLURM
    // cannot finish redistributing while Penelope still does. At 96 nodes
    // the onset frequency is ~11.1k/48 ≈ 230 Hz; test just beyond it.
    let sc = ScaleScenario::for_pair(
        &penelope::workload::npb::bt(),
        &penelope::workload::npb::ep(),
        96,
        260.0,
        5,
    );
    let slurm = scale::run_point(SystemKind::Slurm, &sc);
    let pen = scale::run_point(SystemKind::Penelope, &sc);
    assert!(
        slurm.total_s.is_none(),
        "SLURM completed despite saturation: {:?}",
        slurm.total_s
    );
    assert!(
        slurm.unanswered > 0.05,
        "no dropped requests: {}",
        slurm.unanswered
    );
    assert!(pen.total_s.is_some(), "Penelope failed to redistribute");
    assert!(pen.unanswered < 0.01);
}

#[test]
fn claim_service_time_extrapolations() {
    // §4.5.2: 80-100 us per request; ~12,500-node saturation at 1 Hz.
    let s = service::run();
    assert!((80.0..=100.0).contains(&s.mean_service_us));
    assert!(s.saturation_nodes_at_1hz > 10_000.0);
    assert!((9.0..=12.0).contains(&s.saturation_hz_at_1056));
}

#[test]
fn claim_penelope_load_is_distributed() {
    // "although the number of messages increases at scale, these will be
    // split among a growing number of nodes" — no Penelope pool queue ever
    // builds up, so turnaround ≈ RTT + service at any scale.
    for nodes in [44usize, 96] {
        let sc = ScaleScenario::for_pair(
            &penelope::workload::npb::cg(),
            &penelope::workload::npb::ft(),
            nodes,
            1.0,
            6,
        );
        let pen = scale::run_point(SystemKind::Penelope, &sc);
        assert!(
            pen.turnaround_ms < 1.0,
            "Penelope turnaround {}ms at {} nodes",
            pen.turnaround_ms,
            nodes
        );
    }
}

#[test]
fn conservation_holds_at_paper_scale() {
    // The full 1056-node scale scenario with the ledger checked after
    // every single event — the strongest safety statement in the repo.
    use penelope::sim::ClusterSim;
    let sc = ScaleScenario::for_pair(
        &penelope::workload::npb::bt(),
        &penelope::workload::npb::ep(),
        1056,
        1.0,
        13,
    );
    for system in [SystemKind::Slurm, SystemKind::Penelope] {
        let mut cfg = sc.config(system);
        cfg.check_invariants = true;
        // A short horizon keeps the O(n)-per-event checking affordable:
        // donors finish and the first redistribution wave completes.
        let horizon = sc.donor_finish + SimDuration::from_secs(10);
        let mut sim = ClusterSim::new(cfg, sc.workloads(Power::from_watts_u64(5), horizon));
        sim.track_redistribution(sc.total_excess(), sc.recipients(), sc.donor_finish);
        let report = sim.run(horizon);
        assert!(report.conservation_ok, "{system:?} at 1056 nodes");
        let tracker = report.redistribution.as_ref().unwrap();
        assert!(
            tracker.fraction_shifted() > 0.1,
            "{system:?} shifted almost nothing: {}",
            tracker.fraction_shifted()
        );
    }
}
