//! The adversarial partition matrix: asymmetric link cuts and
//! gossip-propagated suspicion, held to the full invariant set.
//!
//! Five scenario families run over both deterministic substrates (the
//! discrete-event simulator and the lockstep threaded runtime):
//!
//! * **Clean partition** — the cluster splits 2|2, then heals. No node
//!   dies, so `lost` must stay zero at every cut (stranded grants are
//!   escrow-reclaimed) and the books must balance at every period.
//! * **Asymmetric partition** — one node goes deaf: every link *towards*
//!   it is cut while its own sends deliver. Its requests keep being
//!   served and every grant back to it dies on the cut link — the worst
//!   case for the escrow layer, and the directional-cut primitive the
//!   group partition is built from.
//! * **Heal** — both of the above restore connectivity mid-run; traffic
//!   and suspicion state must reconverge.
//! * **Flapping node** — one node alternates between isolated and
//!   reachable every period: suspicion state must follow without the
//!   ledger leaking.
//! * **Partition + churn** — a node crashes *inside* a partitioned half
//!   and reboots the same period the split heals: the kill-last same-tick
//!   ordering contract and zero-sum re-admission combined.
//!
//! On top of the matrix, the gossip layer itself is proven non-vacuously:
//! an ablation pair of runs (identical but for `gossip_digest = 0`) shows
//! piggybacked suspicion digests spread a dead node's suspicion
//! cluster-wide within a bounded number of gossip rounds, where the
//! ablated cluster pays the full `suspect_after × response_timeout`
//! detection cost per node. A deterministic property test then throws
//! arbitrary kill/restart/partition/heal interleavings at the simulator
//! and checks ledger accounting and per-node seq-epoch monotonicity on
//! every schedule, shrinking any failure to a minimal script.
//!
//! The swept drop rate can be pinned from the environment for CI matrix
//! jobs: `PENELOPE_DROP_RATE=0.2 cargo test --test partition_conformance`
//! runs only that rate instead of the full sweep.

use std::sync::Arc;

use penelope::conformance::{
    asymmetric_partition_scenario, flapping_scenario, partition_churn_scenario, partition_scenario,
    profile_from_spec, sim_config, LockstepRuntime, SimSubstrate,
};
use penelope_core::DeciderPolicy;
use penelope_sim::{ClusterSim, FaultAction, FaultScript};
use penelope_testkit::conformance::{
    check_run, FaultSpec, PhaseSpec, Scenario, Substrate, WorkloadSpec,
};
use penelope_testkit::prop::{self, vec_of, Gen};
use penelope_trace::{EventKind, RingBufferObserver, SharedObserver, TraceEvent};
use penelope_units::{NodeId, Power, PowerRange, SimDuration, SimTime};

const PERIOD: SimDuration = SimDuration::from_secs(1);

fn at_period(p: u64) -> SimTime {
    SimTime::ZERO + PERIOD * p
}

/// Drop rates (in permille) to sweep, or the single rate pinned by the
/// `PENELOPE_DROP_RATE` environment variable (as a probability).
fn drop_rates_permille() -> Vec<u16> {
    match std::env::var("PENELOPE_DROP_RATE") {
        Ok(v) => {
            let rate: f64 = v
                .parse()
                .unwrap_or_else(|e| panic!("PENELOPE_DROP_RATE {v:?} is not a probability: {e}"));
            assert!(
                (0.0..=1.0).contains(&rate),
                "PENELOPE_DROP_RATE {rate} outside [0, 1]"
            );
            vec![(rate * 1000.0).round() as u16]
        }
        Err(_) => vec![0, 200],
    }
}

/// A hand-rolled scenario whose nodes all run a flat 220 W demand — every
/// node is hungry for the whole run, so request/grant traffic (and with
/// it, digest gossip) flows every period.
fn all_hungry_scenario(
    seed: u64,
    name: &str,
    nodes: usize,
    periods: u64,
    fault: FaultSpec,
) -> Scenario {
    Scenario {
        name: name.into(),
        seed,
        nodes,
        budget_per_node: Power::from_watts_u64(160),
        safe: PowerRange::from_watts(80, 300),
        periods,
        workloads: vec![WorkloadSpec {
            phases: vec![PhaseSpec {
                demand: Power::from_watts_u64(220),
                secs: 600.0,
            }],
        }],
        fault,
        read_noise: 0.0,
        policy: DeciderPolicy::default(),
    }
}

fn profiles(scenario: &Scenario) -> Vec<penelope_workload::Profile> {
    (0..scenario.nodes)
        .map(|i| {
            let spec = &scenario.workloads[i % scenario.workloads.len()];
            profile_from_spec(spec, &format!("w{i}"))
        })
        .collect()
}

/// Run on `substrate` and assert the scenario-independent invariant set.
fn assert_conserves(scenario: &Scenario, substrate: &dyn Substrate) {
    let run = substrate
        .run(scenario)
        .unwrap_or_else(|e| panic!("{} failed to run {}: {e}", substrate.name(), scenario.name));
    let violations = check_run(scenario, &run);
    assert!(
        violations.is_empty(),
        "{} violated invariants on {} (seed {:#x}): {violations:#?}",
        substrate.name(),
        scenario.name,
        scenario.seed
    );
    assert_eq!(
        run.final_total,
        scenario.cluster_budget(),
        "{} final total drifted from the budget on {} (seed {:#x})",
        substrate.name(),
        scenario.name,
        scenario.seed
    );
}

// ---------------------------------------------------------------------
// The matrix: every partition family × both substrates (× drop rates)
// ---------------------------------------------------------------------

#[test]
fn partition_matrix_conserves_on_sim_and_lockstep() {
    let sim = SimSubstrate;
    let runtime = LockstepRuntime;
    let mut scenarios = Vec::new();
    for dp in drop_rates_permille() {
        scenarios.push(partition_scenario(0x5EED_9A01 + u64::from(dp), dp, 16));
        scenarios.push(asymmetric_partition_scenario(
            0x5EED_9A02 + u64::from(dp),
            dp,
            16,
        ));
    }
    scenarios.push(flapping_scenario(0x5EED_9A03, 16));
    scenarios.push(partition_churn_scenario(0x5EED_9A04, 16));
    for scenario in &scenarios {
        for substrate in [&sim as &dyn Substrate, &runtime] {
            assert_conserves(scenario, substrate);
        }
    }
}

#[test]
fn partition_churn_restart_readmits_zero_sum() {
    // The concurrent-fault scenario: the node dies inside a partitioned
    // half and reboots the period the split heals. On top of the shared
    // invariants, the lost ledger must take exactly one decrease — the
    // restart — of exactly min(initial cap, lost).
    let scenario = partition_churn_scenario(0x5EED_9B01, 16);
    for substrate in [&SimSubstrate as &dyn Substrate, &LockstepRuntime] {
        let run = substrate
            .run(&scenario)
            .unwrap_or_else(|e| panic!("{} failed: {e}", substrate.name()));
        assert!(check_run(&scenario, &run).is_empty());
        let mut decreases = Vec::new();
        let mut prev = Power::ZERO;
        for snap in &run.snapshots {
            if snap.lost < prev {
                decreases.push((prev - snap.lost, prev));
            }
            prev = snap.lost;
        }
        assert_eq!(
            decreases.len(),
            1,
            "{}: expected exactly one lost-ledger decrease (the restart): {decreases:?}",
            substrate.name()
        );
        let (readmitted, lost_before) = decreases[0];
        assert_eq!(readmitted, scenario.budget_per_node.min(lost_before));
        assert!(run.final_alive[1], "node 1 never rejoined");
    }
}

// ---------------------------------------------------------------------
// Suspicion lifecycle under partitions, proven by event streams
// ---------------------------------------------------------------------

fn observed_sim_run(scenario: &Scenario) -> Vec<TraceEvent> {
    let ring = Arc::new(RingBufferObserver::unbounded());
    SimSubstrate::run_observed(scenario, SharedObserver::from(ring.clone()))
        .unwrap_or_else(|e| panic!("sim failed to run {}: {e}", scenario.name));
    ring.events()
}

#[test]
fn clean_partition_drives_suspicion_and_gossip_then_heals() {
    // A 9-period split gives cross-partition request chains time to burn
    // through their retransmit schedule and suspect; gossip then spreads
    // the suspicion within each half before the heal.
    let scenario = all_hungry_scenario(
        0x5EED_9C01,
        "partition-gossip",
        4,
        22,
        FaultSpec::Partition {
            split_at: 2,
            at_period: 3,
            heal_at_period: 12,
            drop_permille: 0,
        },
    );
    let events = observed_sim_run(&scenario);
    let heal = at_period(12);

    let suspected = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::PeerSuspected { .. }))
        .count();
    assert!(
        suspected > 0,
        "no node ever suspected a cross-partition peer"
    );
    let gossiped: Vec<&TraceEvent> = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::SuspicionGossiped { .. }))
        .collect();
    assert!(
        !gossiped.is_empty(),
        "no suspicion ever spread via digest gossip"
    );
    // Gossip must only flow between nodes that can still talk: during the
    // split every digest rode a grant that crossed a live link, so the
    // carrier (`via`) sits on the adopter's side of the cut.
    for e in &gossiped {
        if e.at < heal {
            if let EventKind::SuspicionGossiped { via, .. } = e.kind {
                assert_eq!(
                    e.node.index() / 2,
                    via.index() / 2,
                    "digest crossed the 2|2 cut during the split: {e:?}"
                );
            }
        }
    }
    // After the heal, replies from formerly unreachable peers must clear
    // suspicions — the cluster reconverges instead of shunning half of
    // itself forever.
    assert!(
        events
            .iter()
            .any(|e| e.at >= heal && matches!(e.kind, EventKind::PeerCleared { .. })),
        "no suspicion ever cleared after the heal"
    );
    // And cross-partition serving resumes (liveness, not just accounting).
    assert!(
        events.iter().any(|e| {
            e.at >= heal
                && matches!(e.kind, EventKind::RequestServed { requester, .. }
                    if requester.index() / 2 != e.node.index() / 2)
        }),
        "no cross-partition request was ever served after the heal"
    );
}

#[test]
fn gossip_rides_the_lockstep_transport_too() {
    // The same digest machinery must work over the threaded runtime's
    // real channels — the wire attachment is substrate code, not sim code.
    let scenario = all_hungry_scenario(
        0x5EED_9C02,
        "partition-gossip-lockstep",
        4,
        22,
        FaultSpec::Partition {
            split_at: 2,
            at_period: 3,
            heal_at_period: 12,
            drop_permille: 0,
        },
    );
    let ring = Arc::new(RingBufferObserver::unbounded());
    LockstepRuntime::run_observed(&scenario, SharedObserver::from(ring.clone()))
        .unwrap_or_else(|e| panic!("lockstep failed: {e}"));
    let events = ring.events();
    assert!(
        events
            .iter()
            .any(|e| matches!(e.kind, EventKind::PeerSuspected { .. })),
        "no suspicion formed on the lockstep runtime"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e.kind, EventKind::SuspicionGossiped { .. })),
        "no suspicion was gossiped on the lockstep runtime"
    );
}

#[test]
fn asymmetric_cut_starves_both_sides_but_victim_traffic_still_serves() {
    // Node 1 goes deaf: every link *towards* it is cut, its own sends
    // deliver. The suspicion graph is symmetric — the victim suspects
    // peers (grants back to it die) and peers suspect the victim (their
    // requests to it die on the same cut). The *traffic* is what's
    // asymmetric: the victim's requests keep reaching peers and being
    // served, while nothing of any kind reaches the victim.
    let victim = NodeId::new(1);
    let scenario = all_hungry_scenario(
        0x5EED_9C03,
        "asymmetric-suspicion",
        4,
        24,
        FaultSpec::AsymmetricIsolate {
            node: 1,
            at_period: 3,
            heal_at_period: 12,
            drop_permille: 0,
        },
    );
    let events = observed_sim_run(&scenario);
    let cut = at_period(3);
    let heal = at_period(12);

    assert!(
        events.iter().any(|e| {
            e.node == victim && e.at < heal && matches!(e.kind, EventKind::PeerSuspected { .. })
        }),
        "the deaf node never suspected anyone"
    );
    assert!(
        events.iter().any(|e| {
            e.node != victim
                && e.at < heal
                && matches!(e.kind, EventKind::PeerSuspected { peer } if peer == victim)
        }),
        "no peer ever suspected the unreachable node"
    );
    // The directional half of the cut: the victim's requests still cross
    // the wire and get served by peers throughout the isolation window...
    assert!(
        events.iter().any(|e| {
            e.node != victim
                && e.at >= cut
                && e.at < heal
                && matches!(e.kind, EventKind::RequestServed { requester, .. }
                    if requester == victim)
        }),
        "no peer served the deaf node's requests during the cut — its sends should deliver"
    );
    // ...while not a single message of any kind reaches the victim. (One
    // period of grace after the cut lets in-flight replies land.)
    assert!(
        !events.iter().any(|e| {
            e.node == victim
                && e.at >= cut + PERIOD
                && e.at < heal
                && matches!(e.kind, EventKind::MsgRecv { .. })
        }),
        "a message reached the deaf node through the cut"
    );
    // Once the links towards it are restored, replies reach the victim
    // again and its suspicions clear.
    assert!(
        events.iter().any(|e| {
            e.node == victim && e.at >= heal && matches!(e.kind, EventKind::PeerCleared { .. })
        }),
        "the deaf node's suspicions never cleared after the heal"
    );
}

#[test]
fn flapping_node_books_stay_balanced_under_alternating_cuts() {
    // One-period flaps are shorter than the retransmit schedule, so the
    // reliability layer rides them out: messages die on the cut (the
    // fault is real), but the ledger never books a loss and the books
    // balance at every period — already asserted by check_run inside.
    let scenario = flapping_scenario(0x5EED_9C04, 16);
    let ring = Arc::new(RingBufferObserver::unbounded());
    let run = SimSubstrate::run_observed(&scenario, SharedObserver::from(ring.clone()))
        .expect("sim runs");
    assert!(check_run(&scenario, &run).is_empty());
    let events = ring.events();
    assert!(
        events
            .iter()
            .any(|e| matches!(e.kind, EventKind::MsgDropped { .. })),
        "the flapping cuts never dropped a message — the fault is vacuous"
    );
}

// ---------------------------------------------------------------------
// The gossip ablation pair: digest on vs. digest off
// ---------------------------------------------------------------------

/// Kill node 0 at `KILL` under all-hungry traffic and return the event
/// stream, with digest gossip enabled or ablated (`gossip_digest = 0`).
/// Everything else — seeds, workloads, fault schedule — is identical, and
/// the digest path consumes no RNG, so the two arms differ only in what
/// the gossip layer does with the same message flow.
///
/// Eight nodes, not four: with only three survivors each picks the dead
/// peer often enough to self-detect within a round or two of the others,
/// leaving gossip nothing to spread. At eight, the 1-in-7 pick rate makes
/// first-hand detection slow and uneven — the regime gossip exists for.
fn run_kill_with_gossip(gossip: bool) -> Vec<TraceEvent> {
    let scenario = all_hungry_scenario(
        0x5EED_9D05,
        "gossip-ablation",
        GOSSIP_NODES,
        45,
        FaultSpec::None,
    );
    let mut cfg = sim_config(&scenario);
    if !gossip {
        cfg.node.decider.gossip_digest = 0;
    }
    let ring = Arc::new(RingBufferObserver::unbounded());
    cfg.observer = SharedObserver::from(ring.clone());
    let mut sim = ClusterSim::new(cfg, profiles(&scenario));
    sim.install_faults(&FaultScript::kill_node_at(KILL, NodeId::new(0)));
    sim.advance_to(at_period(45));
    ring.events()
}

const GOSSIP_NODES: usize = 8;
const KILL: SimTime = SimTime::from_secs(8);

/// Per-survivor instant of first suspicion (own timeout or gossip) of the
/// dead node.
fn first_suspicions(events: &[TraceEvent]) -> Vec<Option<SimTime>> {
    let dead = NodeId::new(0);
    (1..GOSSIP_NODES as u32)
        .map(|n| {
            events
                .iter()
                .filter(|e| e.node == NodeId::new(n))
                .filter(|e| {
                    matches!(e.kind,
                        EventKind::PeerSuspected { peer } | EventKind::SuspicionGossiped { peer, .. }
                            if peer == dead)
                })
                .map(|e| e.at)
                .min()
        })
        .collect()
}

#[test]
fn gossip_converges_suspicion_faster_than_local_timeouts() {
    let suspect_after = u64::from(
        sim_config(&all_hungry_scenario(0, "probe", 4, 1, FaultSpec::None))
            .node
            .decider
            .suspect_after,
    );

    // --- Gossip arm -------------------------------------------------
    let events = run_kill_with_gossip(true);
    let firsts = first_suspicions(&events);
    assert!(
        firsts.iter().all(Option::is_some),
        "not every survivor learned of the dead node with gossip on: {firsts:?}"
    );
    let gossiped = events
        .iter()
        .filter(
            |e| matches!(e.kind, EventKind::SuspicionGossiped { peer, .. } if peer == NodeId::new(0)),
        )
        .count();
    assert!(
        gossiped > 0,
        "gossip arm never spread the suspicion secondhand — the ablation comparison is vacuous"
    );
    // At least one survivor must have learned *first* through gossip:
    // secondhand knowledge beat its own timeout schedule.
    let learned_secondhand = (1..GOSSIP_NODES as u32).any(|n| {
        let node = NodeId::new(n);
        let first = events.iter().filter(|e| e.node == node).find(|e| {
            matches!(e.kind,
                    EventKind::PeerSuspected { peer } | EventKind::SuspicionGossiped { peer, .. }
                        if peer == NodeId::new(0))
        });
        matches!(
            first.map(|e| &e.kind),
            Some(EventKind::SuspicionGossiped { .. })
        )
    });
    assert!(
        learned_secondhand,
        "every survivor earned its suspicion through its own timeouts — gossip did nothing"
    );
    // Cluster-wide convergence: once the first node suspects, gossip must
    // carry the suspicion to the last node within three gossip rounds
    // (one round = one decider period, the piggyback cadence).
    let min = firsts.iter().flatten().min().copied().expect("nonempty");
    let max = firsts.iter().flatten().max().copied().expect("nonempty");
    assert!(
        max - min <= PERIOD * 3,
        "gossip took more than 3 rounds to converge: first at {min:?}, last at {max:?}"
    );

    // --- Ablation arm ----------------------------------------------
    let ablated = run_kill_with_gossip(false);
    assert!(
        !ablated
            .iter()
            .any(|e| matches!(e.kind, EventKind::SuspicionGossiped { .. })),
        "ablated run still gossiped"
    );
    let ablated_firsts = first_suspicions(&ablated);
    // Without gossip every node pays its own detection cost: at minimum
    // `suspect_after` timeouts of `response_timeout` each, all after the
    // kill.
    let floor = KILL + SimDuration::from_secs(suspect_after);
    for (i, first) in ablated_firsts.iter().enumerate() {
        if let Some(t) = first {
            assert!(
                *t >= floor,
                "survivor {} suspected at {t:?}, before the local-timeout floor {floor:?} — \
                 something other than its own timeouts told it",
                i + 1
            );
        }
    }
    // And cluster-wide convergence is strictly slower than the gossip arm.
    let ablated_max = ablated_firsts.iter().flatten().max().copied();
    match ablated_max {
        Some(t) => assert!(
            t > max,
            "ablated run converged no later ({t:?}) than the gossip run ({max:?})"
        ),
        // Some survivor never suspecting at all is the strongest form of
        // "slower".
        None => {}
    }
}

// ---------------------------------------------------------------------
// Same-tick ordering: kills apply after connectivity changes
// ---------------------------------------------------------------------

#[test]
fn same_tick_partition_and_kill_order_is_insertion_invariant() {
    // `install_faults` contracts that same-instant entries apply with
    // kills last, whatever order the script listed them in. Run the same
    // scenario with the two permutations of a same-tick partition + kill
    // and require identical event streams and identical books.
    let groups = || {
        vec![
            vec![NodeId::new(0), NodeId::new(1)],
            vec![NodeId::new(2), NodeId::new(3)],
        ]
    };
    let t = at_period(4);
    let kill_first = FaultScript::none()
        .at(t, FaultAction::Kill(NodeId::new(1)))
        .at(t, FaultAction::Partition(groups()));
    let partition_first = FaultScript::none()
        .at(t, FaultAction::Partition(groups()))
        .at(t, FaultAction::Kill(NodeId::new(1)));

    let run = |script: &FaultScript| {
        let scenario = all_hungry_scenario(0x5EED_9E01, "same-tick", 4, 12, FaultSpec::None);
        let mut cfg = sim_config(&scenario);
        let ring = Arc::new(RingBufferObserver::unbounded());
        cfg.observer = SharedObserver::from(ring.clone());
        let mut sim = ClusterSim::new(cfg, profiles(&scenario));
        sim.install_faults(script);
        sim.advance_to(at_period(12));
        let snap = sim.conformance_snapshot(12);
        (ring.events(), snap.accounted_live(), snap.lost)
    };

    let (events_a, live_a, lost_a) = run(&kill_first);
    let (events_b, live_b, lost_b) = run(&partition_first);
    assert_eq!(live_a, live_b);
    assert_eq!(lost_a, lost_b);
    assert_eq!(
        events_a.len(),
        events_b.len(),
        "same-tick permutations diverged in event count"
    );
    for (a, b) in events_a.iter().zip(events_b.iter()) {
        assert_eq!(a, b, "same-tick permutations diverged");
    }
}

// ---------------------------------------------------------------------
// Property: arbitrary fault schedules preserve the ledger and seq-epochs
// ---------------------------------------------------------------------

/// One scripted fault op drawn by the property test.
#[derive(Clone, Debug)]
enum FaultOp {
    Kill(u32),
    Restart(u32),
    Split(u32),
    Heal,
    CutLink(u32, u32),
    HealLink(u32, u32),
}

fn op_action(op: &FaultOp, nodes: usize) -> Option<FaultAction> {
    match *op {
        FaultOp::Kill(n) => Some(FaultAction::Kill(NodeId::new(n))),
        FaultOp::Restart(n) => Some(FaultAction::Restart(NodeId::new(n))),
        FaultOp::Split(at) => {
            let split = (at as usize % nodes).max(1);
            Some(FaultAction::Partition(vec![
                (0..split).map(|i| NodeId::new(i as u32)).collect(),
                (split..nodes).map(|i| NodeId::new(i as u32)).collect(),
            ]))
        }
        FaultOp::Heal => Some(FaultAction::Heal),
        FaultOp::CutLink(a, b) | FaultOp::HealLink(a, b) if a == b => None,
        FaultOp::CutLink(a, b) => Some(FaultAction::PartitionLink {
            from: NodeId::new(a),
            to: NodeId::new(b),
        }),
        FaultOp::HealLink(a, b) => Some(FaultAction::HealLink {
            from: NodeId::new(a),
            to: NodeId::new(b),
        }),
    }
}

#[test]
fn random_fault_schedules_preserve_zero_sum_and_seq_epochs() {
    // Scripts of up to 10 (period, op) pairs over a 4-node cluster:
    // kills, restarts, 2-group splits, heals and directional cuts in any
    // interleaving — including nonsense legs (restarting a live node,
    // cutting a link twice), which must be harmless no-ops. The simulator
    // asserts conservation internally after every event; on top of that
    // the end state must balance exactly and no node's request sequence
    // may ever regress, crashes and rebirths included (the seq-epoch
    // contract that makes stale grants detectable).
    let ops = vec_of((0u64..12, 0u32..6, 0u32..4, 0u32..4), 0..10).prop_map(|raw| {
        raw.into_iter()
            .map(|(period, kind, a, b)| {
                let op = match kind {
                    0 => FaultOp::Kill(a),
                    1 => FaultOp::Restart(a),
                    2 => FaultOp::Split(a.max(1)),
                    3 => FaultOp::Heal,
                    4 => FaultOp::CutLink(a, b),
                    _ => FaultOp::HealLink(a, b),
                };
                (period, op)
            })
            .collect::<Vec<_>>()
    });

    // 48 cases by default; CI's quick-effort legs dial this down (and a
    // failing seed can be replayed) via PENELOPE_PROP_CASES/_SEED.
    let mut cfg = prop::Config::from_env();
    if std::env::var("PENELOPE_PROP_CASES").is_err() {
        cfg.cases = 48;
    }
    prop::check("random_fault_schedules", cfg, ops, |script| {
        let scenario = all_hungry_scenario(0x5EED_9F01, "prop-faults", 4, 14, FaultSpec::None);
        let mut cfg = sim_config(&scenario);
        let ring = Arc::new(RingBufferObserver::unbounded());
        cfg.observer = SharedObserver::from(ring.clone());
        let mut sim = ClusterSim::new(cfg, profiles(&scenario));
        let mut faults = FaultScript::none();
        for (period, op) in &script {
            if let Some(action) = op_action(op, scenario.nodes) {
                faults = faults.at(at_period(*period), action);
            }
        }
        sim.install_faults(&faults);
        sim.advance_to(at_period(scenario.periods));

        // Ledger: live + lost equals the budget at the end (and the
        // simulator asserted it after every event on the way here).
        let end = sim.conformance_snapshot(scenario.periods);
        assert_eq!(
            end.accounted_live() + end.lost,
            scenario.cluster_budget(),
            "fault script broke zero-sum: {script:?}"
        );

        // Seq-epochs: per node, request sequence numbers never
        // decrease across the whole run (retransmits legitimately
        // repeat a seq) — a rebirth must continue the namespace,
        // never rewind it.
        let events = ring.events();
        for n in 0..scenario.nodes as u32 {
            let node = NodeId::new(n);
            let mut last: Option<u64> = None;
            for e in events.iter().filter(|e| e.node == node) {
                if let EventKind::RequestSent { seq, .. } = e.kind {
                    if let Some(prev) = last {
                        assert!(
                            seq >= prev,
                            "node {n} seq regressed {prev} -> {seq} under {script:?}"
                        );
                    }
                    last = Some(seq);
                }
            }
        }
    });
}
