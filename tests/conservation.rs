//! Property tests of the system-wide safety invariant across the whole
//! stack: for arbitrary workload mixes, budgets, seeds and fault schedules,
//! no power-management system ever mints power — the conservation ledger
//! holds after every event (asserted inside the simulator when
//! `check_invariants` is on), and the budget is fully accounted at the end.

use penelope::prelude::*;
use penelope::sim::ClusterConfig;
use proptest::prelude::*;

fn workload_strategy(n: usize) -> impl Strategy<Value = Vec<Profile>> {
    proptest::collection::vec((100u64..260, 5.0f64..40.0, 0usize..3), n..=n).prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (demand, work, shape))| {
                let perf = PerfModel::new(Power::from_watts_u64(60), 0.7);
                let phases = match shape {
                    0 => vec![Phase::new(Power::from_watts_u64(demand), work)],
                    1 => vec![
                        Phase::new(Power::from_watts_u64(demand), work / 2.0),
                        Phase::new(
                            Power::from_watts_u64(demand.saturating_sub(40).max(70)),
                            work / 2.0,
                        ),
                    ],
                    _ => vec![
                        Phase::new(
                            Power::from_watts_u64(demand.saturating_sub(60).max(70)),
                            work / 2.0,
                        ),
                        Phase::new(Power::from_watts_u64(demand), work / 2.0),
                    ],
                };
                Profile::new(format!("w{i}"), phases, perf)
            })
            .collect()
    })
}

fn check_run(
    system: SystemKind,
    workloads: Vec<Profile>,
    seed: u64,
    budget_per_node_w: u64,
    faults: FaultScript,
) {
    check_run_noisy(system, workloads, seed, budget_per_node_w, faults, 0.0)
}

fn check_run_noisy(
    system: SystemKind,
    workloads: Vec<Profile>,
    seed: u64,
    budget_per_node_w: u64,
    faults: FaultScript,
    read_noise_std: f64,
) {
    let n = workloads.len();
    let mut cfg =
        ClusterConfig::checked(system, Power::from_watts_u64(budget_per_node_w * n as u64));
    cfg.rapl.read_noise_std = read_noise_std;
    cfg.seed = seed;
    let mut sim = ClusterSim::new(cfg, workloads);
    sim.install_faults(&faults);
    // `checked` configs panic inside the run on any ledger violation; the
    // report flag is belt and braces.
    let report = sim.run(SimTime::from_secs(600));
    assert!(report.conservation_ok);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn penelope_conserves_power(
        workloads in workload_strategy(6),
        seed in any::<u64>(),
        budget in 140u64..220,
    ) {
        check_run(SystemKind::Penelope, workloads, seed, budget, FaultScript::none());
    }

    #[test]
    fn slurm_conserves_power(
        workloads in workload_strategy(6),
        seed in any::<u64>(),
        budget in 140u64..220,
    ) {
        check_run(SystemKind::Slurm, workloads, seed, budget, FaultScript::none());
    }

    #[test]
    fn penelope_conserves_power_under_faults(
        workloads in workload_strategy(6),
        seed in any::<u64>(),
        kill_at in 1u64..60,
        victim in 0u32..6,
        drop_rate in 0.0f64..0.4,
    ) {
        let faults = FaultScript::none()
            .at(SimTime::ZERO, FaultAction::SetDropRate(drop_rate))
            .at(SimTime::from_secs(kill_at), FaultAction::Kill(NodeId::new(victim)));
        check_run(SystemKind::Penelope, workloads, seed, 160, faults);
    }

    #[test]
    fn slurm_conserves_power_under_server_and_client_faults(
        workloads in workload_strategy(6),
        seed in any::<u64>(),
        kill_at in 1u64..60,
        kill_client_too in any::<bool>(),
    ) {
        let mut faults = FaultScript::kill_server_at(SimTime::from_secs(kill_at));
        if kill_client_too {
            faults = faults.at(
                SimTime::from_secs(kill_at + 5),
                FaultAction::Kill(NodeId::new(2)),
            );
        }
        check_run(SystemKind::Slurm, workloads, seed, 160, faults);
    }

    #[test]
    fn conservation_survives_noisy_power_readings(
        workloads in workload_strategy(6),
        seed in any::<u64>(),
        noise in 0.0f64..0.10,
        slurm in any::<bool>(),
    ) {
        // Real RAPL readings are noisy; deciders then misjudge excess and
        // hunger — but every action stays zero-sum, so the ledger must hold
        // no matter how wrong the readings are.
        let system = if slurm { SystemKind::Slurm } else { SystemKind::Penelope };
        check_run_noisy(system, workloads, seed, 160, FaultScript::none(), noise);
    }

    #[test]
    fn penelope_conserves_power_under_partitions(
        workloads in workload_strategy(6),
        seed in any::<u64>(),
        split_at in 1u64..30,
        heal_at in 31u64..90,
    ) {
        let left: Vec<NodeId> = (0..3).map(NodeId::new).collect();
        let right: Vec<NodeId> = (3..6).map(NodeId::new).collect();
        let faults = FaultScript::none()
            .at(SimTime::from_secs(split_at), FaultAction::Partition(vec![left, right]))
            .at(SimTime::from_secs(heal_at), FaultAction::Heal);
        check_run(SystemKind::Penelope, workloads, seed, 160, faults);
    }
}
