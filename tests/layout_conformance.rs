//! Bit-identity pin of the simulator hot path across storage layouts.
//!
//! PR 8 rebuilds the simulator's per-node storage from an
//! array-of-structs (`Vec<SimNode>`) into a struct-of-arrays
//! (`NodeTable`) and removes per-event allocations from the inner loop.
//! Those are *storage* changes: every RNG draw, every event ordering and
//! every protocol decision must be unaffected. This test pins that claim
//! with per-seed digests of the complete protocol-event stream — the
//! digests committed in `tests/data/layout_digests.txt` were recorded
//! from the pre-refactor layout, so a digest match *is* trace-stream
//! equality between the old layout and the new hot path.
//!
//! Scenarios covered are the §4.2 trio the satellite names: nominal,
//! churn (kill → suspicion → restart), and partition (cut → heal), each
//! at two seeds.
//!
//! Re-blessing (`PENELOPE_BLESS=1 cargo test --test layout_conformance`)
//! is only legitimate when the simulator's *behavior* deliberately
//! changes; a storage-only PR must never need it.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;

use penelope::conformance::{churn_scenario, nominal_scenario, partition_scenario, SimSubstrate};
use penelope_testkit::conformance::Scenario;
use penelope_trace::{RingBufferObserver, SharedObserver, TraceEvent};

/// FNV-1a over the debug rendering of every event, order-sensitive.
///
/// The debug form includes timestamps, node ids, sequence numbers and
/// exact milliwatt amounts, so any divergence in RNG draw order, event
/// scheduling or arithmetic shows up as a different digest.
fn stream_digest(events: &[TraceEvent]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut line = String::new();
    for ev in events {
        line.clear();
        write!(line, "{ev:?}").expect("format event");
        for b in line.as_bytes() {
            hash ^= u64::from(*b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // Separator so event boundaries can't alias.
        hash ^= 0x0a;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn run_digest(scenario: &Scenario) -> (u64, usize) {
    let ring = Arc::new(RingBufferObserver::unbounded());
    SimSubstrate::run_observed(scenario, SharedObserver::from(ring.clone()))
        .unwrap_or_else(|e| panic!("{} failed: {e}", scenario.name));
    let events = ring.events();
    assert!(
        !events.is_empty(),
        "{}: empty event stream pins nothing",
        scenario.name
    );
    (stream_digest(&events), events.len())
}

fn cases() -> Vec<(String, Scenario)> {
    let mut v = Vec::new();
    for seed in [7u64, 0xBEEF] {
        v.push((format!("nominal/{seed:#x}"), nominal_scenario(seed)));
        v.push((format!("churn/{seed:#x}"), churn_scenario(seed, 0, 40)));
        v.push((
            format!("partition/{seed:#x}"),
            partition_scenario(seed, 0, 40),
        ));
    }
    v
}

fn digest_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("data")
        .join("layout_digests.txt")
}

#[test]
fn storage_layout_preserves_trace_streams_per_seed() {
    let path = digest_path();
    let mut lines = String::new();
    let mut failures = Vec::new();
    let golden = std::fs::read_to_string(&path).unwrap_or_default();

    for (name, scenario) in cases() {
        let (digest, events) = run_digest(&scenario);
        writeln!(lines, "{name} {digest:#018x} {events}").unwrap();
        let expect = golden
            .lines()
            .find(|l| l.split_whitespace().next() == Some(name.as_str()));
        match expect {
            Some(l) => {
                let mut f = l.split_whitespace();
                f.next();
                let want = f.next().unwrap_or("?");
                let got = format!("{digest:#018x}");
                if want != got {
                    failures.push(format!(
                        "{name}: stream digest {got} != golden {want} ({events} events)"
                    ));
                }
            }
            None => failures.push(format!("{name}: no golden digest recorded")),
        }
    }

    if std::env::var("PENELOPE_BLESS").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("create tests/data");
        std::fs::write(&path, &lines).expect("write digests");
        return;
    }
    assert!(
        failures.is_empty(),
        "trace streams diverged from the recorded (pre-SoA) layout:\n{}\n\
         If the divergence is an intended behavior change, re-bless with \
         PENELOPE_BLESS=1; a storage-only change must instead be fixed.",
        failures.join("\n")
    );
}
