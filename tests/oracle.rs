//! Differential oracle: the paper's §4.2–§4.3 ordering claims, checked by
//! running the *same* scenario under Penelope, the static Fair baseline
//! and the centralized SLURM-style manager, and feeding the normalized
//! performance triple to `penelope_testkit::conformance::oracle`.
//!
//! Normalization follows the paper: performance = fair_runtime / runtime,
//! so Fair is 1.0 by construction and higher is better.

use penelope::experiments::faulty::run_faulty_cell;
use penelope::experiments::nominal::run_cell;
use penelope::sim::{ClusterConfig, ClusterSim, SystemKind};
use penelope::units::{Power, SimTime};
use penelope::workload::{npb, PerfModel, Phase, Profile};
use penelope_testkit::conformance::oracle::{
    check_centralized_no_better, check_fault_advantage, check_nominal, PerfTriple,
};

const NODES: usize = 4;
const CAP_PER_SOCKET_W: u64 = 80;
const TIME_SCALE: f64 = 0.08;

fn watts(w: u64) -> Power {
    Power::from_watts_u64(w)
}

fn triple(fair: f64, slurm: f64, penelope: f64) -> PerfTriple {
    PerfTriple {
        penelope: fair / penelope,
        fair: 1.0,
        slurm: fair / slurm,
    }
}

/// §4.2 / Fig. 2: under nominal conditions the three systems are nearly
/// equivalent — Penelope within a few percent of Fair and of SLURM.
#[test]
fn nominal_ordering_matches_paper() {
    let pair = (npb::ep(), npb::dc());
    let seed = 0x04AC_1E00;
    let fair = run_cell(
        SystemKind::Fair,
        CAP_PER_SOCKET_W,
        &pair,
        NODES,
        TIME_SCALE,
        seed,
    );
    let slurm = run_cell(
        SystemKind::Slurm,
        CAP_PER_SOCKET_W,
        &pair,
        NODES,
        TIME_SCALE,
        seed,
    );
    let pen = run_cell(
        SystemKind::Penelope,
        CAP_PER_SOCKET_W,
        &pair,
        NODES,
        TIME_SCALE,
        seed,
    );
    let t = triple(fair, slurm, pen);
    check_nominal(t, 0.05).unwrap();
    check_centralized_no_better(t, 0.05).unwrap();
}

/// The stranded-power scenario: half the cluster finishes early and its
/// power sits idle; the other half stays hungry. A static division
/// strands the released watts, while Penelope (and SLURM, while its
/// server lives) move them to the hungry nodes.
fn stranded_power_runtime(system: SystemKind, seed: u64) -> f64 {
    let perf = PerfModel::default();
    let donor = Profile::new("donor", vec![Phase::new(watts(150), 5.0)], perf);
    let recipient = Profile::new("recipient", vec![Phase::new(watts(260), 40.0)], perf);
    let workloads = vec![donor.clone(), donor, recipient.clone(), recipient];
    let horizon = SimTime::from_secs(900);
    let mut cfg = ClusterConfig::paper_defaults(system, watts(NODES as u64 * 160));
    cfg.seed = seed;
    let report = ClusterSim::new(cfg, workloads).run(horizon);
    assert!(report.conservation_ok, "{system:?}: conservation violated");
    report.runtime_secs().unwrap_or(horizon.as_secs_f64())
}

/// §4.3 / §4.5: when released power would otherwise be stranded,
/// Penelope's redistribution must beat the static baseline by a clear
/// margin, and the centralized manager has no information advantage.
#[test]
fn stranded_power_redistribution_beats_static_division() {
    let seed = 0x04AC_1E01;
    let fair = stranded_power_runtime(SystemKind::Fair, seed);
    let slurm = stranded_power_runtime(SystemKind::Slurm, seed);
    let pen = stranded_power_runtime(SystemKind::Penelope, seed);
    let t = triple(fair, slurm, pen);
    check_fault_advantage(t, 0.10).unwrap();
    check_centralized_no_better(t, 0.10).unwrap();
}

/// §4.3 / Fig. 3: kill the coordinator mid-run. SLURM loses all
/// redistribution (and drops toward or below Fair); Penelope only loses
/// one ordinary client and keeps redistributing among survivors.
#[test]
fn coordinator_loss_breaks_slurm_not_penelope() {
    let pair = (npb::ep(), npb::dc());
    let seed = 0x04AC_1E02;
    let fair = run_cell(
        SystemKind::Fair,
        CAP_PER_SOCKET_W,
        &pair,
        NODES,
        TIME_SCALE,
        seed,
    );
    let slurm = run_faulty_cell(
        SystemKind::Slurm,
        CAP_PER_SOCKET_W,
        &pair,
        NODES,
        TIME_SCALE,
        seed,
        fair,
    );
    let pen = run_faulty_cell(
        SystemKind::Penelope,
        CAP_PER_SOCKET_W,
        &pair,
        NODES,
        TIME_SCALE,
        seed,
        fair,
    );
    let t = triple(fair, slurm, pen);
    check_centralized_no_better(t, 0.05).unwrap();
}
