//! Cross-substrate conformance for the non-default decider policies.
//!
//! The `DeciderPolicy` seam swaps the tick-time urgency/threshold logic
//! (Alg. 1) while the shared engine — escrow, suspicion, gossip,
//! seq/epochs — stays byte-for-byte identical. These tests pin the two
//! claims that seam makes:
//!
//! 1. **Portability is policy-independent.** For an idealized scenario
//!    (zero latency, zero service time, exact meters) the simulator and
//!    the lockstep threaded runtime must emit *equal* normalized
//!    protocol-event streams under the predictive and market policies,
//!    exactly as they already must under urgency — including the new
//!    `BidPlaced` / `ForecastJump` events, which are part of the diffed
//!    protocol stream.
//! 2. **Conservation is policy-independent.** Every safety invariant
//!    (no minting, safe caps, pool balance, zero-sum on consistent cuts)
//!    holds under every policy, with and without message loss — a market
//!    bid in flight is just a request; losing it must strand zero power.

use std::sync::Arc;

use penelope::conformance::{policy_scenario, LockstepRuntime, SimSubstrate};
use penelope_core::{DeciderPolicy, MarketConfig, PredictiveConfig};
use penelope_testkit::conformance::{
    check_run, FaultSpec, PhaseSpec, Scenario, Substrate, WorkloadSpec,
};
use penelope_testkit::events::normalize_protocol;
use penelope_trace::{EventKind, RingBufferObserver, SharedObserver, TraceEvent};
use penelope_units::{Power, PowerRange};

fn watts(w: u64) -> Power {
    Power::from_watts_u64(w)
}

fn challenger_policies() -> [DeciderPolicy; 2] {
    [
        DeciderPolicy::Predictive(PredictiveConfig::default()),
        DeciderPolicy::Market(MarketConfig::default()),
    ]
}

/// A two-node exact-meter scenario in the mold of the urgency
/// stream-equality test (one pool with one possible requester, so serve
/// order is deterministic across substrates), re-run under `policy`.
/// Node 1 runs hungry for four periods and then *drops* to 100 W: a
/// falling demand edge shows up in the power reading at full size (a
/// rising one is clipped by the cap), so the predictive jump detector
/// provably fires on the ≥15 W downward step. Node 0 is hungry from the
/// start, so the market provably bids — and node 1's post-drop excess
/// gives the pool something to match those bids against.
fn ideal_policy_scenario(seed: u64, policy: DeciderPolicy) -> Scenario {
    Scenario {
        name: format!("event-stream-{}", policy.name()),
        seed,
        nodes: 2,
        budget_per_node: watts(160),
        safe: PowerRange::from_watts(80, 300),
        periods: 10,
        workloads: vec![
            WorkloadSpec {
                phases: vec![PhaseSpec {
                    demand: watts(220),
                    secs: 60.0,
                }],
            },
            WorkloadSpec {
                phases: vec![
                    PhaseSpec {
                        demand: watts(210),
                        secs: 4.0,
                    },
                    PhaseSpec {
                        demand: watts(100),
                        secs: 60.0,
                    },
                ],
            },
        ],
        fault: FaultSpec::None,
        read_noise: 0.0,
        policy,
    }
}

/// The event kinds only one policy family can emit, used as non-vacuity
/// evidence that the scenario actually drove the policy-specific paths.
fn count_kind(events: &[TraceEvent], pred: fn(&EventKind) -> bool) -> usize {
    events.iter().filter(|e| pred(&e.kind)).count()
}

#[test]
fn sim_and_lockstep_emit_identical_streams_under_every_policy() {
    for policy in challenger_policies() {
        for seed in [11, 4242] {
            let scenario = ideal_policy_scenario(seed, policy);
            let sim_ring = Arc::new(RingBufferObserver::unbounded());
            let rt_ring = Arc::new(RingBufferObserver::unbounded());
            SimSubstrate::run_observed_ideal(&scenario, SharedObserver::from(sim_ring.clone()))
                .expect("sim run");
            LockstepRuntime::run_observed(&scenario, SharedObserver::from(rt_ring.clone()))
                .expect("lockstep run");

            // The sim's final advance_to also fires the tick sitting on
            // the last boundary; compare complete periods only (same cut
            // the urgency-policy stream test uses).
            let cut = |evs: Vec<TraceEvent>| -> Vec<TraceEvent> {
                evs.into_iter()
                    .filter(|e| e.period < scenario.periods)
                    .collect()
            };
            let sim_events = cut(sim_ring.events());
            let rt_events = cut(rt_ring.events());

            // Non-vacuity: the challenger-specific protocol paths must
            // actually run in both streams.
            match policy {
                DeciderPolicy::Market(_) => {
                    for (name, evs) in [("sim", &sim_events), ("runtime", &rt_events)] {
                        assert!(
                            count_kind(evs, |k| matches!(k, EventKind::BidPlaced { .. })) > 0,
                            "seed {seed} {name}: market stream placed no bids"
                        );
                    }
                }
                DeciderPolicy::Predictive(_) => {
                    for (name, evs) in [("sim", &sim_events), ("runtime", &rt_events)] {
                        assert!(
                            count_kind(evs, |k| matches!(k, EventKind::ForecastJump { .. })) > 0,
                            "seed {seed} {name}: predictive stream never snapped its forecast"
                        );
                    }
                }
                DeciderPolicy::Urgency => unreachable!("challengers only"),
            }
            assert!(
                count_kind(&sim_events, |k| matches!(k, EventKind::RequestSent { .. })) > 0,
                "seed {seed}: {} stream sent no requests",
                policy.name()
            );

            let sim_norm = normalize_protocol(&sim_events);
            let rt_norm = normalize_protocol(&rt_events);
            assert_eq!(
                sim_norm,
                rt_norm,
                "seed {seed}: sim and lockstep diverge under the {} policy",
                policy.name()
            );
        }
    }
}

/// Run `scenario` on `substrate`, assert the invariant set, and require
/// exact conservation: zero `lost` everywhere and every consistent cut
/// summing to the initial budget.
fn assert_conserves(scenario: &Scenario, substrate: &dyn Substrate) {
    let run = substrate
        .run(scenario)
        .unwrap_or_else(|e| panic!("{} failed {}: {e}", substrate.name(), scenario.name));
    let violations = check_run(scenario, &run);
    assert!(
        violations.is_empty(),
        "{} violated invariants on {} (seed {:#x}): {violations:#?}",
        substrate.name(),
        scenario.name,
        scenario.seed
    );
    for snap in &run.snapshots {
        assert!(
            snap.lost.is_zero(),
            "{} booked {:?} lost at period {} of {}",
            substrate.name(),
            snap.lost,
            snap.period,
            scenario.name
        );
        if snap.consistent_cut {
            assert_eq!(
                snap.accounted_live(),
                scenario.cluster_budget(),
                "{} period {} of {} does not conserve the budget",
                substrate.name(),
                snap.period,
                scenario.name
            );
        }
    }
    assert_eq!(
        run.final_total,
        scenario.cluster_budget(),
        "{} final total drifted on {}",
        substrate.name(),
        scenario.name
    );
}

#[test]
fn every_policy_conserves_power_on_clean_links() {
    for policy in challenger_policies() {
        let scenario = policy_scenario(0x70C1_0001, policy, 0, 10);
        for substrate in [&SimSubstrate as &dyn Substrate, &LockstepRuntime] {
            assert_conserves(&scenario, substrate);
        }
    }
}

#[test]
fn market_bids_in_flight_under_loss_strand_zero_power() {
    // The market-specific risk: a granted bid is power in motion. At 20%
    // loss, dropped bid-requests, dropped grants and dropped acks must
    // all resolve through the same escrow machinery as urgency traffic —
    // every consistent cut still sums to the budget exactly, with real
    // bids provably in the mix.
    let scenario = policy_scenario(
        0x70C1_0002,
        DeciderPolicy::Market(MarketConfig::default()),
        200,
        20,
    );
    let ring = Arc::new(RingBufferObserver::unbounded());
    let run = SimSubstrate::run_observed(&scenario, SharedObserver::from(ring.clone()))
        .expect("lossy market sim runs");
    let events = ring.events();
    assert!(
        count_kind(&events, |k| matches!(k, EventKind::BidPlaced { .. })) > 0,
        "no bids placed under loss — the scenario is vacuous"
    );
    assert!(
        count_kind(&events, |k| matches!(k, EventKind::MsgDropped { .. })) > 0,
        "no messages dropped at 200‰ — the loss leg is vacuous"
    );
    let violations = check_run(&scenario, &run);
    assert!(violations.is_empty(), "{violations:#?}");
    for snap in &run.snapshots {
        assert!(snap.lost.is_zero(), "market loss stranded power");
        if snap.consistent_cut {
            assert_eq!(snap.accounted_live(), scenario.cluster_budget());
        }
    }

    // And the lockstep substrate agrees end to end.
    assert_conserves(&scenario, &LockstepRuntime);
}

#[test]
fn predictive_policy_conserves_under_loss() {
    let scenario = policy_scenario(
        0x70C1_0003,
        DeciderPolicy::Predictive(PredictiveConfig::default()),
        200,
        20,
    );
    for substrate in [&SimSubstrate as &dyn Substrate, &LockstepRuntime] {
        assert_conserves(&scenario, substrate);
    }
}
