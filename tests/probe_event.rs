//! "Lands once, works everywhere": the `peer_probed` protocol event is
//! implemented *only* in `penelope-core` (the engine emits it when peer
//! selection lets a request through to a peer whose suspicion outlived
//! the probe interval), yet it is observable on all three substrates
//! with zero substrate changes — the payoff of the NodeEngine seam.
//!
//! Topology for every leg: one node dies, the survivors suspect it after
//! consecutive timeouts, selection avoids it while the suspicion is
//! fresh, and once the probe interval elapses the next request to the
//! corpse is narrated as a probe.

use std::sync::Arc;
use std::time::Duration;

use penelope::conformance::{profile_from_spec, sim_config};
use penelope_core::DeciderPolicy;
use penelope_runtime::{RuntimeConfig, ThreadedCluster};
use penelope_sim::{ClusterSim, FaultScript};
use penelope_testkit::conformance::{FaultSpec, PhaseSpec, Scenario, WorkloadSpec};
use penelope_trace::{EventKind, RingBufferObserver, SharedObserver, TraceEvent};
use penelope_units::{NodeId, Power, PowerRange, SimDuration, SimTime};

fn w(x: u64) -> Power {
    Power::from_watts_u64(x)
}

/// Four nodes: node 0 idles (and then dies), nodes 1-3 stay hungry so
/// they keep requesting — first from everyone, then (post-suspicion)
/// only from the living, then probing the corpse.
fn scenario(seed: u64) -> Scenario {
    let workloads = (0..4)
        .map(|i| WorkloadSpec {
            phases: vec![PhaseSpec {
                demand: if i == 0 { w(100) } else { w(220) },
                secs: 120.0,
            }],
        })
        .collect();
    Scenario {
        name: "probe-demo".into(),
        seed,
        nodes: 4,
        budget_per_node: w(160),
        safe: PowerRange::from_watts(80, 300),
        periods: 10,
        workloads,
        fault: FaultSpec::None,
        read_noise: 0.0,
        policy: DeciderPolicy::default(),
    }
}

/// Assert the probe narrative: the dead peer was suspected, later
/// probed, and no node probed it before suspecting it.
fn assert_probe_narrative(events: &[TraceEvent], dead: NodeId, substrate: &str) {
    assert!(
        events
            .iter()
            .any(|e| matches!(e.kind, EventKind::PeerSuspected { peer } if peer == dead)),
        "{substrate}: no survivor ever suspected the dead node"
    );
    let probes: Vec<&TraceEvent> = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::PeerProbed { peer } if peer == dead))
        .collect();
    assert!(
        !probes.is_empty(),
        "{substrate}: suspicion never expired into a peer_probed event"
    );
    for probe in probes {
        // Suspicion is born locally (PeerSuspected) or adopted from a
        // digest (SuspicionGossiped) — either precedes a legal probe.
        let suspected_before = events.iter().any(|e| {
            e.node == probe.node
                && e.at <= probe.at
                && matches!(e.kind,
                    EventKind::PeerSuspected { peer }
                    | EventKind::SuspicionGossiped { peer, .. } if peer == dead)
        });
        assert!(
            suspected_before,
            "{substrate}: node {} probed the dead peer without ever suspecting it",
            probe.node.raw()
        );
    }
}

#[test]
fn probe_event_surfaces_on_the_simulator() {
    let scenario = scenario(0x5EED_960B);
    let mut cfg = sim_config(&scenario);
    // Shrink the probe interval so suspicion expires into a probe well
    // within the run (config, not code — the event logic is core-only).
    cfg.node.decider.probe_interval = SimDuration::from_secs(3);
    let ring = Arc::new(RingBufferObserver::unbounded());
    cfg.observer = SharedObserver::from(ring.clone());
    let profiles = scenario
        .workloads
        .iter()
        .enumerate()
        .map(|(i, spec)| profile_from_spec(spec, &format!("w{i}")))
        .collect();
    let mut sim = ClusterSim::new(cfg, profiles);
    sim.install_faults(&FaultScript::kill_node_at(
        SimTime::ZERO + SimDuration::from_secs(6),
        NodeId::new(0),
    ));
    sim.advance_to(SimTime::ZERO + SimDuration::from_secs(40));
    assert_probe_narrative(&ring.events(), NodeId::new(0), "sim");
}

#[test]
fn probe_event_surfaces_on_the_threaded_runtime() {
    let mut cfg = RuntimeConfig::fast(w(4 * 160));
    cfg.node.decider.probe_interval = SimDuration::from_millis(150);
    let ring = Arc::new(RingBufferObserver::unbounded());
    cfg.observer = SharedObserver::from(ring.clone());
    let mk = |demand: u64| {
        profile_from_spec(
            &WorkloadSpec {
                phases: vec![PhaseSpec {
                    demand: w(demand),
                    secs: 3.0,
                }],
            },
            "p",
        )
    };
    let workloads = vec![mk(100), mk(250), mk(250), mk(250)];
    let _ = ThreadedCluster::run_penelope_with_fault(
        cfg,
        workloads,
        Duration::from_secs(4),
        Some((Duration::from_millis(200), 0)),
    );
    assert_probe_narrative(&ring.events(), NodeId::new(0), "runtime");
}

#[test]
fn probe_event_surfaces_on_the_udp_daemon() {
    use std::net::UdpSocket;

    use penelope_daemon::{run_daemon_with_socket, DaemonConfig};

    // Three cluster slots; slot 1 is a black hole (bound, never served):
    // the daemons suspect it after timeouts and probe it after the
    // interval. Node 0 stays hungry so it never stops requesting.
    let sockets: Vec<UdpSocket> = (0..3)
        .map(|_| UdpSocket::bind("127.0.0.1:0").expect("bind"))
        .collect();
    let addrs: Vec<_> = sockets.iter().map(|s| s.local_addr().unwrap()).collect();
    let launch = |i: usize, demand: u64| {
        let peers = (0..3).filter(|j| *j != i).map(|j| addrs[j]).collect();
        let mut cfg = DaemonConfig::demo(addrs[i], peers, w(demand));
        cfg.node_id = i as u32;
        cfg.node.decider.probe_interval = SimDuration::from_millis(150);
        let socket = sockets[i].try_clone().expect("clone socket");
        run_daemon_with_socket(cfg, socket).expect("daemon start")
    };
    let hungry = launch(0, 250);
    let donor = launch(2, 100);

    // The hungry daemon must suspect the black hole and, once the
    // suspicion outlives the probe interval, probe it.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while hungry.counters().count("peer_probed") == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    let counters = hungry.counters();
    let _ = hungry.stop();
    let _ = donor.stop();
    assert!(
        counters.count("peer_suspected") > 0,
        "daemon never suspected the black-hole peer: {counters:?}"
    );
    assert!(
        counters.count("peer_probed") > 0,
        "daemon suspicion never expired into a peer_probed event: {counters:?}"
    );
}
