//! Conservation and liveness under node churn: crash → timeout-driven
//! suspicion → restart rejoin.
//!
//! The churn scenario kills one node mid-run and revives it several
//! periods later at its initial cap, re-admitted *from the lost-power
//! ledger*. The invariants under test:
//!
//! * **Zero-sum at every consistent cut** — live power + lost power equals
//!   the initial budget before, during, and after the outage; the restart
//!   mints nothing.
//! * **Bounded re-admission** — the restart moves exactly
//!   `min(initial cap, lost)` back from `lost` to live, never more than
//!   the crash retired.
//! * **Sequence-epoch safety** — grants addressed to the pre-crash
//!   incarnation are discarded by the reborn decider (non-vacuously: the
//!   stale-grant test arranges for one to actually land).
//! * **Liveness** — request timeouts drive peer suspicion, so survivors
//!   stop hammering the dead node and the restarted node reconverges to
//!   its fair share.
//!
//! The swept drop rate can be pinned from the environment for CI matrix
//! jobs: `PENELOPE_DROP_RATE=0.2 cargo test --test churn_conformance`
//! runs only that rate instead of the full sweep.

use std::sync::Arc;

use penelope::conformance::{
    churn_scenario, profile_from_spec, sim_config, LockstepRuntime, SimSubstrate,
    UdpDaemonSubstrate,
};
use penelope_core::DeciderPolicy;
use penelope_net::LatencyModel;
use penelope_sim::{ClusterSim, DiscoveryStrategy, FaultScript};
use penelope_testkit::conformance::{
    check_run, FaultSpec, PhaseSpec, Scenario, Substrate, WorkloadSpec,
};
use penelope_trace::{EventKind, RingBufferObserver, SharedObserver};
use penelope_units::{NodeId, Power, PowerRange, SimDuration, SimTime};

/// Drop rates (in permille) to sweep, or the single rate pinned by the
/// `PENELOPE_DROP_RATE` environment variable (as a probability).
fn drop_rates_permille() -> Vec<u16> {
    match std::env::var("PENELOPE_DROP_RATE") {
        Ok(v) => {
            let rate: f64 = v
                .parse()
                .unwrap_or_else(|e| panic!("PENELOPE_DROP_RATE {v:?} is not a probability: {e}"));
            assert!(
                (0.0..=1.0).contains(&rate),
                "PENELOPE_DROP_RATE {rate} outside [0, 1]"
            );
            vec![(rate * 1000.0).round() as u16]
        }
        Err(_) => vec![0, 200],
    }
}

/// The churned node index in [`churn_scenario`].
const CHURNED: u32 = 1;

/// Run `scenario` on `substrate` and assert the full invariant set plus
/// the churn-specific guarantees: the kill retires power into `lost`,
/// the restart re-admits exactly `min(initial cap, lost)` back out of it
/// (the single decrease `lost` ever takes), and the node's liveness
/// follows an alive → dead → alive pattern with no other transitions.
fn assert_churn_conserves(scenario: &Scenario, substrate: &dyn Substrate) {
    let run = substrate
        .run(scenario)
        .unwrap_or_else(|e| panic!("{} failed to run {}: {e}", substrate.name(), scenario.name));

    let violations = check_run(scenario, &run);
    assert!(
        violations.is_empty(),
        "{} violated invariants on {} (seed {:#x}): {violations:#?}",
        substrate.name(),
        scenario.name,
        scenario.seed
    );

    // `lost` rises when the node dies (its cap, pool and escrow are
    // retired, plus any in-flight remnants addressed to it), then takes
    // exactly one decrease — the restart — of exactly
    // min(initial cap, lost): zero-sum re-admission.
    let mut decreases = Vec::new();
    let mut prev = Power::ZERO;
    for snap in &run.snapshots {
        if snap.lost < prev {
            decreases.push((snap.period, prev - snap.lost, prev));
        }
        prev = snap.lost;
    }
    assert_eq!(
        decreases.len(),
        1,
        "{} on {}: expected exactly one lost-ledger decrease (the restart), got {decreases:?} (seed {:#x})",
        substrate.name(),
        scenario.name,
        scenario.seed
    );
    let (period, readmitted, lost_before) = decreases[0];
    let expected = scenario.budget_per_node.min(lost_before);
    assert_eq!(
        readmitted,
        expected,
        "{} on {}: restart at period {period} re-admitted {readmitted:?}, expected min(initial cap {:?}, lost {lost_before:?}) (seed {:#x})",
        substrate.name(),
        scenario.name,
        scenario.budget_per_node,
        scenario.seed
    );

    // Liveness pattern: alive, then one contiguous dead window, then
    // alive through to the end.
    let alive: Vec<bool> = run
        .snapshots
        .iter()
        .map(|s| s.nodes[CHURNED as usize].alive)
        .collect();
    assert!(alive.first() == Some(&true), "node {CHURNED} dead at start");
    assert!(
        alive.last() == Some(&true),
        "{} on {}: node {CHURNED} never came back (seed {:#x})",
        substrate.name(),
        scenario.name,
        scenario.seed
    );
    assert!(
        alive.iter().any(|a| !a),
        "{} on {}: node {CHURNED} was never observed dead (seed {:#x})",
        substrate.name(),
        scenario.name,
        scenario.seed
    );
    let transitions = alive.windows(2).filter(|w| w[0] != w[1]).count();
    assert_eq!(
        transitions,
        2,
        "{} on {}: liveness flapped: {alive:?} (seed {:#x})",
        substrate.name(),
        scenario.name,
        scenario.seed
    );
    assert!(run.final_alive[CHURNED as usize], "dead in final state");

    // End state must balance exactly: whatever is still booked lost plus
    // everything live equals the initial budget.
    assert_eq!(
        run.final_total,
        scenario.cluster_budget(),
        "{} final total drifted from the budget on {} (seed {:#x})",
        substrate.name(),
        scenario.name,
        scenario.seed
    );
}

#[test]
fn churn_sweep_conserves_on_sim_and_lockstep() {
    let sim = SimSubstrate;
    let runtime = LockstepRuntime;
    for drop_permille in drop_rates_permille() {
        let scenario = churn_scenario(0x5EED_C402 + u64::from(drop_permille), drop_permille, 16);
        for substrate in [&sim as &dyn Substrate, &runtime] {
            assert_churn_conserves(&scenario, substrate);
        }
    }
}

#[test]
fn restarted_node_reconverges_to_fair_share() {
    // The §4.2-length acceptance run: after rejoining at period 10, the
    // churned node has 30 periods to climb back. By then every node runs
    // a hungry phase, so the cluster is oversubscribed and the fair share
    // is exactly the per-node budget.
    let scenario = churn_scenario(0x5EED_C440, 0, 40);
    let fair = scenario.budget_per_node;
    let band = Power::from_watts_u64(50);
    for substrate in [&SimSubstrate as &dyn Substrate, &LockstepRuntime] {
        let run = substrate
            .run(&scenario)
            .unwrap_or_else(|e| panic!("{} failed: {e}", substrate.name()));
        assert!(run.final_alive[CHURNED as usize]);
        let cap = run.final_caps[CHURNED as usize];
        let dev = if cap > fair { cap - fair } else { fair - cap };
        assert!(
            dev <= band,
            "{}: churned node ended at {cap:?}, more than {band:?} from fair share {fair:?} (seed {:#x})",
            substrate.name(),
            scenario.seed
        );
    }
}

/// Build a hand-rolled scenario for the direct-simulator tests below:
/// `hungry` says which nodes run a flat 220 W demand; the rest idle at
/// 100 W and keep depositing excess into their pools.
fn direct_scenario(seed: u64, name: &str, hungry: &[usize]) -> Scenario {
    let workloads = (0..4)
        .map(|i| WorkloadSpec {
            phases: vec![PhaseSpec {
                demand: if hungry.contains(&i) {
                    Power::from_watts_u64(220)
                } else {
                    Power::from_watts_u64(100)
                },
                secs: 120.0,
            }],
        })
        .collect();
    Scenario {
        name: name.into(),
        seed,
        nodes: 4,
        budget_per_node: Power::from_watts_u64(160),
        safe: PowerRange::from_watts(80, 300),
        periods: 10,
        workloads,
        fault: FaultSpec::None,
        read_noise: 0.0,
        policy: DeciderPolicy::default(),
    }
}

fn profiles(scenario: &Scenario) -> Vec<penelope_workload::Profile> {
    scenario
        .workloads
        .iter()
        .enumerate()
        .map(|(i, spec)| profile_from_spec(spec, &format!("w{i}")))
        .collect()
}

#[test]
fn stale_pre_crash_grant_is_discarded_not_double_paid() {
    // Non-vacuous sequence-epoch test. The hungry node drains its local
    // pool for the first seven periods and sends its next peer request at
    // the t=8 s tick; with 400 ms links that request is served (and the
    // grant sent) around t=8.4 s and the grant lands around t=8.8 s.
    // Killing at 8.1 s and restarting at 8.3 s puts the rebirth between
    // the request and the grant *send* — the transport refuses sends to a
    // dead destination, so the node must already be reborn when the
    // granter replies — and the grant then reaches the *new* incarnation
    // carrying a pre-crash sequence number. The reborn decider's seq
    // floor must discard it (the amount is returned to the ledger as
    // lost, not applied) — otherwise the node would be paid its
    // re-admitted cap *and* the stale grant: minting.
    let scenario = direct_scenario(0x5EED_57A1, "stale-grant", &[1]);
    let mut cfg = sim_config(&scenario);
    cfg.latency = LatencyModel::Constant(SimDuration::from_millis(400));
    let mut sim = ClusterSim::new(cfg, profiles(&scenario));
    sim.install_faults(&FaultScript::kill_restart(
        NodeId::new(1),
        SimTime::ZERO + SimDuration::from_millis(8100),
        SimTime::ZERO + SimDuration::from_millis(8300),
    ));
    // Conservation is asserted inside the simulator after every event, so
    // completing the run already proves the stale grant was not minted.
    sim.advance_to(SimTime::ZERO + SimDuration::from_secs(15));
    let stats = sim
        .decider_stats(NodeId::new(1))
        .expect("node 1 runs a Penelope decider");
    assert!(
        stats.stale_discards >= 1,
        "no stale pre-crash grant ever reached the reborn node — the \
         sequence-epoch test is vacuous (stats: {stats:?})"
    );
}

#[test]
fn gossip_hint_rediversifies_after_hinted_peer_dies() {
    // Regression test for the sticky-hint liveness bug: under GossipHint
    // discovery every hungry node learns that node 0 (the only node with
    // excess) is the place to ask, and before the fix kept re-querying it
    // forever after it died — each request eating a full timeout. Now the
    // first timeout on the hinted peer clears the hint and repeated
    // timeouts suspect it, so traffic must re-diversify onto live peers.
    let scenario = direct_scenario(0x5EED_4055, "sticky-hint", &[1, 2, 3]);
    let mut cfg = sim_config(&scenario);
    cfg.discovery = DiscoveryStrategy::GossipHint { explore: 0.1 };
    let ring = Arc::new(RingBufferObserver::unbounded());
    cfg.observer = SharedObserver::from(ring.clone());
    let mut sim = ClusterSim::new(cfg, profiles(&scenario));
    sim.install_faults(&FaultScript::kill_node_at(
        SimTime::ZERO + SimDuration::from_secs(8),
        NodeId::new(0),
    ));
    sim.advance_to(SimTime::ZERO + SimDuration::from_secs(30));

    let events = ring.events();
    // The dead hinted peer must end up suspected by at least one survivor.
    assert!(
        events
            .iter()
            .any(|e| matches!(e.kind, EventKind::PeerSuspected { peer } if peer == NodeId::new(0))),
        "no survivor ever suspected the dead hinted peer"
    );
    // Once hints are cleared and suspicion kicks in (give it until t=14 s:
    // hint clear after the first 1 s timeout, suspicion after three), the
    // survivors' requests must spread over live peers instead of hammering
    // the corpse. Suspicion un-suspects for a probe every 8 s, so a
    // trickle to node 0 is expected — but it must be a minority.
    let cutoff = SimTime::ZERO + SimDuration::from_secs(14);
    for node in 1..4u32 {
        let dsts: Vec<NodeId> = events
            .iter()
            .filter(|e| e.node == NodeId::new(node) && e.at >= cutoff)
            .filter_map(|e| match e.kind {
                EventKind::RequestSent { dst, .. } => Some(dst),
                _ => None,
            })
            .collect();
        assert!(
            !dsts.is_empty(),
            "node {node} stopped requesting after the hinted peer died"
        );
        let to_dead = dsts.iter().filter(|d| **d == NodeId::new(0)).count();
        assert!(
            to_dead * 2 < dsts.len(),
            "node {node} still sent {to_dead}/{} requests to the dead hinted peer",
            dsts.len()
        );
        let live_peers: std::collections::HashSet<NodeId> = dsts
            .iter()
            .copied()
            .filter(|d| *d != NodeId::new(0))
            .collect();
        assert!(
            live_peers.len() >= 2,
            "node {node} did not re-diversify: live destinations {live_peers:?}"
        );
    }
}

#[test]
fn churn_daemon_restarts_on_the_same_address_with_a_seq_watermark() {
    // Real UDP daemons on loopback: the kill stops the process (its
    // socket closes), the restart binds a brand-new socket on the *same*
    // address — peers keep static peer lists — and hands the new daemon
    // the dead incarnation's sequence watermark plus the re-admitted cap.
    // The free-running daemons are held to the invariants and the
    // zero-sum re-admission, not to trajectory agreement.
    let scenario = churn_scenario(0x5EED_C4DA, 0, 16);
    let run = UdpDaemonSubstrate
        .run(&scenario)
        .expect("daemon substrate runs");
    let violations = check_run(&scenario, &run);
    assert!(violations.is_empty(), "{violations:#?}");

    let mut decreases = Vec::new();
    let mut prev = Power::ZERO;
    for snap in &run.snapshots {
        if snap.lost < prev {
            decreases.push((prev - snap.lost, prev));
        }
        prev = snap.lost;
    }
    assert_eq!(
        decreases.len(),
        1,
        "expected exactly one lost-ledger decrease (the restart): {decreases:?}"
    );
    let (readmitted, lost_before) = decreases[0];
    assert_eq!(readmitted, scenario.budget_per_node.min(lost_before));

    assert!(run.final_alive[CHURNED as usize], "daemon never rejoined");
    // UDP grants still in flight at shutdown only ever make the end
    // state *under*count, never mint.
    assert!(run.final_total <= scenario.cluster_budget());
}

#[test]
fn fault_free_churn_scenario_config_matches_lossy_defaults() {
    // The churn scenario must not perturb the nominal protocol: at zero
    // drop rate its simulator config differs from the lossy zero-drop
    // config only in the fault script, so fault-free event streams stay
    // byte-identical across scenario families.
    let churn = churn_scenario(0x5EED_0001, 0, 12);
    let lossy = penelope::conformance::lossy_scenario(0x5EED_0001, 0, 12);
    let a = sim_config(&churn);
    let b = sim_config(&lossy);
    assert_eq!(
        a.node.decider.max_retransmits,
        b.node.decider.max_retransmits
    );
    assert_eq!(a.node.decider.suspect_after, b.node.decider.suspect_after);
    assert_eq!(a.node.decider.probe_interval, b.node.decider.probe_interval);
    assert_eq!(a.seed, b.seed);
}
