//! The decider duel, end to end: urgency vs predictive vs market on
//! identical seeded diurnal workloads, across two substrates.
//!
//! Leg 1 runs the full experiment harness duel on the discrete-event
//! simulator (`penelope_experiments::duel`): per policy, mean
//! request→grant turnaround, Jain's fairness index over integrated caps,
//! makespan, and the non-vacuity counters (bids placed, forecast jumps).
//!
//! Leg 2 re-runs all three policies on the lockstep threaded runtime —
//! real OS threads, real message passing — over the same diurnal demand
//! family, folding the same metrics out of the same observer event
//! stream. The point of the second substrate is the paper's portability
//! claim applied to the policy seam: the *ranking* is a property of the
//! policies, not of the execution substrate that happened to run them.
//!
//! ```text
//! cargo run --release --example decider_duel
//! cargo run --release --example decider_duel -- --out DUEL.txt
//! PENELOPE_EFFORT=smoke cargo run --release --example decider_duel
//! ```

use std::sync::Arc;

use penelope::conformance::LockstepRuntime;
use penelope::experiments::{duel, Effort};
use penelope_core::DeciderPolicy;
use penelope_metrics::{jain_from_events, turnaround_from_events, TextTable};
use penelope_testkit::conformance::{FaultSpec, PhaseSpec, Scenario, WorkloadSpec};
use penelope_trace::{RingBufferObserver, SharedObserver};
use penelope_units::{Power, PowerRange, SimTime};
use penelope_workload::diurnal::{self, DiurnalConfig};

const SEED: u64 = 0x00E1_0DE1;
const LOCKSTEP_NODES: usize = 4;
const LOCKSTEP_PERIODS: u64 = 24;

/// The diurnal demand family, flattened into substrate-neutral workload
/// specs for the lockstep leg: one decision period per slot, two days.
fn diurnal_specs(nodes: usize, seed: u64) -> Vec<WorkloadSpec> {
    let cfg = DiurnalConfig {
        seed,
        day_secs: 12.0,
        ..DiurnalConfig::default()
    };
    diurnal::cluster(&cfg, nodes)
        .into_iter()
        .map(|p| WorkloadSpec {
            phases: p
                .phases
                .iter()
                .map(|ph| PhaseSpec {
                    demand: ph.demand,
                    secs: ph.work,
                })
                .collect(),
        })
        .collect()
}

fn lockstep_scenario(policy: DeciderPolicy) -> Scenario {
    Scenario {
        name: format!("duel-lockstep-{}", policy.name()),
        seed: SEED,
        nodes: LOCKSTEP_NODES,
        budget_per_node: Power::from_watts_u64(160),
        safe: PowerRange::from_watts(80, 300),
        periods: LOCKSTEP_PERIODS,
        workloads: diurnal_specs(LOCKSTEP_NODES, SEED),
        fault: FaultSpec::None,
        read_noise: 0.0,
        policy,
    }
}

struct LockstepLine {
    policy: DeciderPolicy,
    mean_turnaround_ms: Option<f64>,
    grants: usize,
    jain: Option<f64>,
}

fn lockstep_leg(policy: DeciderPolicy) -> LockstepLine {
    let scenario = lockstep_scenario(policy);
    let ring = Arc::new(RingBufferObserver::unbounded());
    LockstepRuntime::run_observed(&scenario, SharedObserver::from(ring.clone()))
        .unwrap_or_else(|e| panic!("lockstep leg for {}: {e}", policy.name()));
    let events = ring.events();
    let turnaround = turnaround_from_events(&events);
    LockstepLine {
        policy,
        mean_turnaround_ms: turnaround.mean().map(|d| d.as_secs_f64() * 1e3),
        grants: turnaround.count(),
        jain: jain_from_events(&events, SimTime::from_secs(LOCKSTEP_PERIODS)),
    }
}

fn render_lockstep(lines: &[LockstepLine]) -> String {
    let mut t = TextTable::new(vec!["policy", "turnaround (ms)", "grants", "Jain"]);
    for l in lines {
        t.row(vec![
            l.policy.name().to_string(),
            l.mean_turnaround_ms
                .map_or_else(|| "-".into(), |v| format!("{v:.2}")),
            format!("{}", l.grants),
            l.jain.map_or_else(|| "-".into(), |v| format!("{v:.4}")),
        ]);
    }
    let fairest = lines
        .iter()
        .max_by(|a, b| {
            a.jain
                .unwrap_or(f64::NEG_INFINITY)
                .total_cmp(&b.jain.unwrap_or(f64::NEG_INFINITY))
        })
        .expect("lines");
    format!(
        "Lockstep leg ({LOCKSTEP_NODES} threads, {LOCKSTEP_PERIODS} periods, same seed/diurnal family)\n{}\nfairest on lockstep: {}\n",
        t.render(),
        fairest.policy.name()
    )
}

fn main() {
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => {
                out = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--out needs a value");
                    std::process::exit(2);
                }))
            }
            other => {
                eprintln!("unknown argument {other:?}; usage: decider_duel [--out PATH]");
                std::process::exit(2);
            }
        }
    }

    let effort = Effort::from_env();
    println!("decider_duel: effort={effort:?} seed={SEED:#x}");

    // Leg 1: the simulator duel (full metrics + non-vacuity evidence).
    let sim_result = duel::run_seeded(effort, SEED);
    let mut report = sim_result.render();

    // Leg 2: the lockstep threaded runtime over the same demand family.
    let lockstep: Vec<LockstepLine> = duel::contenders().into_iter().map(lockstep_leg).collect();
    report.push('\n');
    report.push_str(&render_lockstep(&lockstep));

    print!("{report}");

    // Sanity the artifact is not vacuous before anyone archives it: both
    // substrates must have completed grants under every policy.
    for e in &sim_result.entries {
        assert!(
            e.grants > 0,
            "sim leg: {} completed no grants",
            e.policy.name()
        );
    }
    for l in &lockstep {
        assert!(
            l.grants > 0,
            "lockstep leg: {} completed no grants",
            l.policy.name()
        );
    }

    if let Some(path) = out {
        std::fs::write(&path, &report).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        println!("wrote {path}");
    }
}
