//! Single-host daemon soak: thousands of multiplexed node engines
//! exchanging real UDP datagrams through one shared socket pair, with
//! grant round-trip tail latency reported in the BENCH schema.
//!
//! ```text
//! cargo run --release --example daemon_soak
//! cargo run --release --example daemon_soak -- --out BENCH_soak.json
//! PENELOPE_EFFORT=full cargo run --release --example daemon_soak
//! cargo run --release --example daemon_soak -- --nodes 2000 --rounds 30
//! ```
//!
//! Effort presets (overridable with `--nodes` / `--rounds`):
//! smoke = 1 000 nodes × 25 rounds, quick = 3 000 × 30, full =
//! 10 000 × 50. The run fails — exit status 1 — if the cluster mints
//! power, if any loopback send fails, or if no grant round trip
//! completes (a latency report with no samples proves nothing).

use penelope::experiments::Effort;
use penelope_bench::report::{BenchReport, GrantRtt, SweepTiming, BENCH_SCHEMA};
use penelope_daemon::{run_multiplexed, MuxConfig};

struct Args {
    out: String,
    nodes: Option<usize>,
    rounds: Option<u64>,
}

fn parse_args() -> Args {
    let mut out = "BENCH.json".to_string();
    let mut nodes = None;
    let mut rounds = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--out" => out = value("--out"),
            "--nodes" => {
                let v = value("--nodes");
                nodes = Some(v.parse().unwrap_or_else(|_| {
                    eprintln!("--nodes must be an integer, got {v:?}");
                    std::process::exit(2);
                }));
            }
            "--rounds" => {
                let v = value("--rounds");
                rounds = Some(v.parse().unwrap_or_else(|_| {
                    eprintln!("--rounds must be an integer, got {v:?}");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!(
                    "unknown argument {other:?}; usage: daemon_soak \
                     [--out PATH] [--nodes N] [--rounds R]"
                );
                std::process::exit(2);
            }
        }
    }
    Args { out, nodes, rounds }
}

fn main() {
    let args = parse_args();
    let effort = Effort::from_env();
    let (effort_name, preset_nodes, preset_rounds) = match effort {
        Effort::Smoke => ("smoke", 1_000, 25),
        Effort::Quick => ("quick", 3_000, 30),
        Effort::Full => ("full", 10_000, 50),
    };
    let nodes = args.nodes.unwrap_or(preset_nodes);
    let rounds = args.rounds.unwrap_or(preset_rounds);
    println!("daemon_soak: effort={effort_name} nodes={nodes} rounds={rounds}");

    let cfg = MuxConfig::soak(nodes, 0x50AC_5EED, rounds);
    let summary = run_multiplexed(&cfg).unwrap_or_else(|e| {
        eprintln!("soak failed to run: {e}");
        std::process::exit(1);
    });

    println!(
        "  frames: sent={} delivered={} wire_lost={} send_failed={}",
        summary.frames_sent, summary.frames_delivered, summary.wire_lost, summary.send_failed
    );
    println!(
        "  power: caps={} pools={} escrowed={} lost={} budget={}",
        summary.total_caps,
        summary.total_pools,
        summary.total_escrowed,
        summary.lost,
        summary.budget
    );
    println!(
        "  {} engine inputs in {:.3}s wall = {:.0} events/sec",
        summary.events,
        summary.wall_s,
        summary.events as f64 / summary.wall_s.max(1e-9)
    );

    let rtt = summary.grant_rtt().unwrap_or_else(|| {
        eprintln!("FAIL: no grant round trip completed — the soak proved nothing");
        std::process::exit(1);
    });
    println!(
        "  grant rtt: samples={} p50={:.1}µs p99={:.1}µs p999={:.1}µs",
        rtt.samples,
        rtt.p50_ns as f64 / 1e3,
        rtt.p99_ns as f64 / 1e3,
        rtt.p999_ns as f64 / 1e3
    );

    let timing = SweepTiming {
        name: "daemon_soak".to_string(),
        cells: summary.nodes,
        events: summary.events,
        sim_secs: summary.virtual_secs,
        wall_s: summary.wall_s,
        // One reactor thread by construction: the serial run IS the run.
        serial_wall_s: summary.wall_s,
        shards: None,
        grant_rtt: None,
    }
    .with_grant_rtt(GrantRtt {
        samples: rtt.samples,
        p50_ns: rtt.p50_ns,
        p99_ns: rtt.p99_ns,
        p999_ns: rtt.p999_ns,
    });
    let report = BenchReport {
        schema: BENCH_SCHEMA.to_string(),
        effort: effort_name.to_string(),
        jobs: 1,
        parallel_matches_serial: true,
        sweeps: vec![timing],
    };

    // Write the artifact and prove it round-trips through the parser — a
    // malformed report must fail here, not in the CI consumer.
    let text = report.to_json();
    std::fs::write(&args.out, &text).unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", args.out);
        std::process::exit(1);
    });
    let back = BenchReport::from_json(&text).unwrap_or_else(|e| {
        eprintln!("self-validation failed: {e}");
        std::process::exit(1);
    });
    assert_eq!(back, report, "report must survive a JSON round-trip");
    println!("wrote {}", args.out);

    let mut failed = false;
    if summary.send_failed > 0 {
        eprintln!(
            "FAIL: {} loopback sends failed at the OS level",
            summary.send_failed
        );
        failed = true;
    }
    if summary.accounted_total() > summary.budget {
        eprintln!(
            "FAIL: power minted — accounted {} exceeds budget {}",
            summary.accounted_total(),
            summary.budget
        );
        failed = true;
    }
    if summary.wire_lost == 0 && summary.accounted_total() != summary.budget {
        eprintln!(
            "FAIL: budget does not balance with nothing lost on the wire: \
             accounted {} vs budget {}",
            summary.accounted_total(),
            summary.budget
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
