//! Quickstart: run a small Penelope cluster and watch power move.
//!
//! Six nodes share a 960 W budget (160 W each). Three run EP — a
//! compute-bound kernel that wants 245 W — and three run DC, an I/O-heavy
//! application that wants ~145 W. Penelope's peer-to-peer transactions move
//! the DC nodes' unused watts to the EP nodes, with no coordinator anywhere.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use penelope::prelude::*;

fn main() {
    // Compress the class-D profiles so the demo finishes instantly.
    let profiles: Vec<Profile> = vec![
        npb::dc(),
        npb::dc(),
        npb::dc(),
        npb::ep(),
        npb::ep(),
        npb::ep(),
    ]
    .into_iter()
    .map(|p| p.scaled(0.2))
    .collect();
    let names: Vec<String> = profiles.iter().map(|p| p.name.clone()).collect();

    let budget = Power::from_watts_u64(6 * 160);
    println!("cluster: 6 nodes, budget {budget}, initial cap 160W/node\n");

    let mut results = Vec::new();
    for system in [SystemKind::Fair, SystemKind::Penelope] {
        // `checked` turns on the conservation ledger: every event asserts
        // that caps + pools + in-flight power still sum to the budget.
        let cfg = ClusterConfig::checked(system, budget);
        let report = ClusterSim::new(cfg, profiles.clone()).run(SimTime::from_secs(2000));
        let runtime = report.runtime_secs().expect("cluster finished");
        println!(
            "{:<9} makespan {:7.2}s  (conservation: {})",
            system.label(),
            runtime,
            if report.conservation_ok {
                "exact"
            } else {
                "VIOLATED"
            }
        );
        for (i, fin) in report.finished.iter().enumerate() {
            println!(
                "  node{i} ({:<2}) finished at {:7.2}s",
                names[i],
                fin.map(|t| t.as_secs_f64()).unwrap_or(f64::NAN)
            );
        }
        results.push(runtime);
        println!();
    }

    let speedup = results[0] / results[1];
    println!("Penelope speedup over Fair: {:.2}x", speedup);
    println!("(the EP nodes ran above their 160W share on watts the DC nodes freed)");
}
