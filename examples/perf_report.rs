//! The machine-readable perf harness: time every sweep serial and
//! parallel, verify the parallel rows match the serial ones bit-for-bit,
//! and write a `penelope-bench/v1` report to `BENCH.json`.
//!
//! CI runs this at smoke effort and gates on a committed baseline: the
//! run fails if any sweep's events/sec (or the aggregate) drops by more
//! than the tolerance, or if the parallel engine stops reproducing the
//! serial rows.
//!
//! ```text
//! cargo run --release --example perf_report
//! cargo run --release --example perf_report -- --out BENCH.json \
//!     --baseline BENCH_baseline.json --tolerance 0.2
//! PENELOPE_EFFORT=smoke PENELOPE_JOBS=4 cargo run --release --example perf_report
//! ```
//!
//! `--tolerance` (or `PENELOPE_PERF_TOLERANCE`) is the allowed fractional
//! throughput drop, default `0.2` (20 %).

use penelope::experiments::parallel::CellStats;
use penelope::experiments::{churn, duel, nominal, parallel, scale, scale_mega, Effort};
use penelope::prelude::{
    npb, ClusterConfig, ClusterSim, FaultAction, FaultScript, Power, SimTime, SystemKind,
};
use penelope_bench::report::{check_regression, BenchReport, SweepTiming, BENCH_SCHEMA};
use penelope_bench::{cap_axis, frequency_axis, scale_axis, time};

struct Args {
    out: String,
    baseline: Option<String>,
    tolerance: f64,
}

fn parse_args() -> Args {
    let mut out = "BENCH.json".to_string();
    let mut baseline = None;
    let mut tolerance = std::env::var("PENELOPE_PERF_TOLERANCE")
        .ok()
        .map(|v| {
            v.parse::<f64>().unwrap_or_else(|_| {
                eprintln!("PENELOPE_PERF_TOLERANCE must be a number, got {v:?}");
                std::process::exit(2);
            })
        })
        .unwrap_or(0.2);
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--out" => out = value("--out"),
            "--baseline" => baseline = Some(value("--baseline")),
            "--tolerance" => {
                let v = value("--tolerance");
                tolerance = v.parse().unwrap_or_else(|_| {
                    eprintln!("--tolerance must be a number, got {v:?}");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!(
                    "unknown argument {other:?}; usage: perf_report \
                     [--out PATH] [--baseline PATH] [--tolerance FRAC]"
                );
                std::process::exit(2);
            }
        }
    }
    if !(0.0..1.0).contains(&tolerance) {
        eprintln!("tolerance must be in [0, 1), got {tolerance}");
        std::process::exit(2);
    }
    Args {
        out,
        baseline,
        tolerance,
    }
}

fn main() {
    let args = parse_args();
    let effort = Effort::from_env();
    let jobs = parallel::jobs_from_env();
    let effort_name = match effort {
        Effort::Smoke => "smoke",
        Effort::Quick => "quick",
        Effort::Full => "full",
    };
    println!("perf_report: effort={effort_name} jobs={jobs}");

    let mut sweeps = Vec::new();
    let mut matches = true;

    // Frequency sweep (Figs. 4/5/7 axis).
    let freqs = frequency_axis(effort);
    let (serial, serial_wall) = time(|| scale::frequency_sweep_with_jobs(effort, &freqs, 1));
    let (par, wall) = time(|| scale::frequency_sweep_with_jobs(effort, &freqs, jobs));
    matches &= par == serial;
    sweeps.push(SweepTiming::from_stats(
        "frequency_sweep",
        &par.stats,
        wall,
        serial_wall,
    ));

    // Scale sweep (Figs. 6/8 axis).
    let scales = scale_axis(effort);
    let (serial, serial_wall) = time(|| scale::scale_sweep_with_jobs(effort, &scales, 1));
    let (par, wall) = time(|| scale::scale_sweep_with_jobs(effort, &scales, jobs));
    matches &= par == serial;
    sweeps.push(SweepTiming::from_stats(
        "scale_sweep",
        &par.stats,
        wall,
        serial_wall,
    ));

    // Nominal matrix (Fig. 2).
    let caps = cap_axis(effort);
    let (serial, serial_wall) = time(|| nominal::run_with_caps_jobs(effort, &caps, 1));
    let (par, wall) = time(|| nominal::run_with_caps_jobs(effort, &caps, jobs));
    matches &= par == serial;
    sweeps.push(SweepTiming::from_stats(
        "nominal",
        &par.1,
        wall,
        serial_wall,
    ));

    // Churn matrix (crash/rejoin retention): liveness machinery — timeout
    // suspicion, the lost-power ledger, restart re-admission and digest
    // gossip — all sit on this path, so a slowdown there lands here.
    let (serial, serial_wall) = time(|| churn::run_with_caps_jobs(effort, &caps, 1));
    let (par, wall) = time(|| churn::run_with_caps_jobs(effort, &caps, jobs));
    matches &= par == serial;
    sweeps.push(SweepTiming::from_stats("churn", &par.1, wall, serial_wall));

    // Escrow/ack overhead: the same small Penelope cluster at increasing
    // message loss. The 0.0 row prices the escrow bookkeeping now paid on
    // every non-zero grant; the lossy rows also exercise retransmits,
    // duplicate-request re-serves and deadline reclaims. Deterministic
    // seeds, so the repeat run must reproduce the first bit-for-bit.
    let lossy_secs = match effort {
        Effort::Smoke => 60,
        Effort::Quick => 180,
        Effort::Full => 600,
    };
    let lossy_sweep = || {
        let mut stats = CellStats::default();
        for permille in [0u16, 50, 200, 500] {
            let budget = Power::from_watts_u64(4 * 160);
            let workloads = vec![npb::dc(), npb::cg(), npb::ep(), npb::lu()];
            let mut cfg = ClusterConfig::paper_defaults(SystemKind::Penelope, budget);
            cfg.node.decider.max_retransmits = 2;
            let mut sim = ClusterSim::new(cfg, workloads);
            sim.install_faults(&FaultScript::none().at(
                SimTime::ZERO,
                FaultAction::SetDropRate(f64::from(permille) / 1000.0),
            ));
            let report = sim.run(SimTime::from_secs(lossy_secs));
            stats.absorb(report.events, report.ended_at.as_secs_f64());
        }
        stats
    };
    let (serial, serial_wall) = time(lossy_sweep);
    let (rerun, wall) = time(lossy_sweep);
    matches &= rerun == serial;
    sweeps.push(SweepTiming::from_stats(
        "lossy_escrow",
        &rerun,
        wall,
        serial_wall,
    ));

    // Decider duel: urgency vs predictive vs market on identical seeded
    // diurnal traces. The policy seam's enum dispatch sits on the hottest
    // per-tick path, so a slowdown in any policy's tick cost lands here;
    // the repeat run must reproduce the first bit-for-bit (scoreboard
    // included), which also pins duel determinism into the perf gate.
    let duel_seed = 0x00E1_0DE1u64;
    let (serial, serial_wall) = time(|| duel::run_seeded(effort, duel_seed));
    let (rerun, wall) = time(|| duel::run_seeded(effort, duel_seed));
    matches &= rerun == serial;
    let mut duel_stats = CellStats::default();
    for e in &rerun.entries {
        duel_stats.absorb(e.sim_events, e.sim_secs);
    }
    sweeps.push(SweepTiming::from_stats(
        "decider_duel",
        &duel_stats,
        wall,
        serial_wall,
    ));
    print!("{}", rerun.render());

    // Mega-scale sweep: the sharded engine at 10^5+ nodes. The repeat run
    // must reproduce the first bit-for-bit — and because the sharded
    // schedule is shard-count invariant, that holds for any
    // PENELOPE_SHARDS setting too.
    let meganodes = scale_mega::node_axis(effort);
    let (serial, serial_wall) = time(|| scale_mega::mega_sweep_with_jobs(effort, &meganodes, 1));
    let (par, wall) = time(|| scale_mega::mega_sweep_with_jobs(effort, &meganodes, jobs));
    matches &= par == serial;
    let mega_shards = par.rows.iter().map(|r| r.shards).max().unwrap_or(1);
    sweeps.push(
        SweepTiming::from_stats("scale_mega", &par.stats, wall, serial_wall)
            .with_shards(mega_shards),
    );

    let report = BenchReport {
        schema: BENCH_SCHEMA.to_string(),
        effort: effort_name.to_string(),
        jobs,
        parallel_matches_serial: matches,
        sweeps,
    };

    for s in &report.sweeps {
        println!(
            "  {:<16} cells={:<4} events={:<9} wall={:.3}s serial={:.3}s \
             events/s={:.0} speedup={:.2}x sim/wall={:.0}x",
            s.name,
            s.cells,
            s.events,
            s.wall_s,
            s.serial_wall_s,
            s.events_per_sec(),
            s.speedup(),
            s.sim_per_wall(),
        );
    }
    println!(
        "  total events/sec: {:.0}  parallel == serial: {}",
        report.total_events_per_sec(),
        report.parallel_matches_serial
    );
    // The ROADMAP scale target. Informational, not a gate: the regression
    // gate below tracks the committed baseline (which sits at the target
    // on the reference container), so a real slide shows up there; this
    // line keeps the absolute number visible in every CI log.
    if let Some(mega) = report.sweep("scale_mega") {
        const TARGET_EPS: f64 = 100_000_000.0;
        println!(
            "  scale_mega: {:.1}M events/sec = {:.0}% of the 100M events/sec target",
            mega.events_per_sec() / 1e6,
            100.0 * mega.events_per_sec() / TARGET_EPS
        );
    }

    // Write the artifact and prove it round-trips through the parser —
    // a malformed report must fail here, not in the CI consumer.
    let text = report.to_json();
    std::fs::write(&args.out, &text).unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", args.out);
        std::process::exit(1);
    });
    let back = BenchReport::from_json(&text).unwrap_or_else(|e| {
        eprintln!("self-validation failed: {e}");
        std::process::exit(1);
    });
    assert_eq!(back, report, "report must survive a JSON round-trip");
    println!("wrote {}", args.out);

    if !report.parallel_matches_serial {
        eprintln!("FAIL: parallel sweep rows diverged from the serial reference");
        std::process::exit(1);
    }

    if let Some(path) = &args.baseline {
        let base_text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {path}: {e}");
            std::process::exit(1);
        });
        let baseline = BenchReport::from_json(&base_text).unwrap_or_else(|e| {
            eprintln!("baseline {path} is not a valid report: {e}");
            std::process::exit(1);
        });
        let failures = check_regression(&report, &baseline, args.tolerance);
        if failures.is_empty() {
            println!(
                "regression gate: OK vs {path} (tolerance {:.0}%)",
                args.tolerance * 100.0
            );
        } else {
            eprintln!("regression gate: FAIL vs {path}");
            for f in &failures {
                eprintln!("  {f}");
            }
            std::process::exit(1);
        }
    }
}
