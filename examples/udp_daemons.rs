//! The real thing in miniature: four `penelope-daemon` instances exchanging
//! actual UDP datagrams on localhost, shifting (simulated-hardware) power
//! peer-to-peer with no coordinator anywhere. This is exactly what runs on
//! a real cluster — point `--rapl` at `/sys/class/powercap` instead of the
//! simulated backend and it manages real sockets.
//!
//! ```text
//! cargo run --release --example udp_daemons
//! ```

use std::net::UdpSocket;
use std::thread;
use std::time::Duration;

use penelope::daemon::{run_daemon_with_socket, DaemonConfig};
use penelope::prelude::*;

fn main() {
    // One donor (100 W appetite), one modest node, two hungry nodes —
    // all capped at 160 W initially.
    let demands = [100u64, 150, 250, 250];
    let sockets: Vec<UdpSocket> = (0..demands.len())
        .map(|_| UdpSocket::bind("127.0.0.1:0").expect("bind"))
        .collect();
    let addrs: Vec<_> = sockets.iter().map(|s| s.local_addr().unwrap()).collect();
    println!("launching {} daemons on {:?}\n", demands.len(), addrs);

    let handles: Vec<_> = sockets
        .into_iter()
        .enumerate()
        .map(|(i, socket)| {
            let peers = addrs
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, a)| *a)
                .collect();
            let mut cfg = DaemonConfig::demo(addrs[i], peers, Power::from_watts_u64(demands[i]));
            cfg.node_id = i as u32;
            cfg.status_every = 10;
            run_daemon_with_socket(cfg, socket).expect("daemon start")
        })
        .collect();

    // Let the cluster trade for two seconds of 20 ms periods.
    thread::sleep(Duration::from_secs(2));

    println!("node  demand  final cap  pool      urgent reqs  granted to peers");
    println!("------------------------------------------------------------------");
    let mut total = Power::ZERO;
    for (i, handle) in handles.into_iter().enumerate() {
        let s = handle.stop();
        total += s.final_cap + s.final_pool;
        println!(
            "{i:<5} {:<7} {:<10} {:<9} {:<12} {}",
            format!("{}W", demands[i]),
            s.final_cap.to_string(),
            s.final_pool.to_string(),
            s.decider.urgent_sent,
            s.granted_to_peers
        );
    }
    println!(
        "\ncaps+pools total {total} <= assigned budget {} (grants in flight at\n\
         shutdown can only make it smaller — power is never minted)",
        Power::from_watts_u64(demands.len() as u64 * 160)
    );
}
