//! Figure-1 of the paper, live: watch unused power move from a node
//! operating under its cap to a power-hungry node, as terminal sparklines
//! of each node's powercap over time. Also writes the full trace to
//! `target/power_timeline.csv` for external plotting.
//!
//! ```text
//! cargo run --release --example power_timeline
//! ```

use penelope::metrics::{downsample, sparkline};
use penelope::prelude::*;

fn main() {
    // Node 0: DC-like donor that later turns hungry (phase change at 40 s).
    // Node 1: EP-like, hungry throughout. Node 2: moderate. Node 3: donor.
    let perf = PerfModel::new(Power::from_watts_u64(60), 0.7);
    let w = Power::from_watts_u64;
    let profiles = vec![
        Profile::new(
            "phasey",
            vec![Phase::new(w(100), 40.0), Phase::new(w(240), 40.0)],
            perf,
        ),
        Profile::new("hungry", vec![Phase::new(w(250), 90.0)], perf),
        Profile::new("steady", vec![Phase::new(w(170), 90.0)], perf),
        Profile::new("donor", vec![Phase::new(w(110), 90.0)], perf),
    ];
    let names: Vec<String> = profiles.iter().map(|p| p.name.clone()).collect();

    let mut cfg = ClusterConfig::checked(SystemKind::Penelope, Power::from_watts_u64(4 * 160));
    cfg.seed = 11;
    let mut sim = ClusterSim::new(cfg, profiles);
    sim.record_traces();
    let report = sim.run(SimTime::from_secs(600));
    let trace = report.trace.as_ref().expect("traces recorded");

    println!("4 nodes under Penelope, 160W initial caps; powercap over time:\n");
    let width = 72;
    for (i, name) in names.iter().enumerate() {
        let caps = trace.cap_series_watts(NodeId::new(i as u32));
        let series = downsample(&caps, width);
        let min = series.iter().copied().fold(f64::INFINITY, f64::min);
        let max = series.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        println!("node{i} ({name:<7}) {}", sparkline(&series));
        println!("              cap range {min:.0}W..{max:.0}W");
    }
    println!();
    println!(
        "the phasey node donates its slack for 40s, then urgency pulls it back\n\
         to its 160W share when its compute phase starts; the hungry node rides\n\
         everyone else's spare watts the whole time."
    );

    let csv = trace.to_csv();
    let path = "target/power_timeline.csv";
    if std::fs::write(path, &csv).is_ok() {
        println!("\nfull trace ({} samples) written to {path}", trace.len());
    }
    println!(
        "\nconservation: {} | makespan {:.1}s | cap reversals/tick {:.4}",
        if report.conservation_ok {
            "exact"
        } else {
            "VIOLATED"
        },
        report.runtime_secs().unwrap_or(f64::NAN),
        report.oscillation.reversal_rate()
    );
}
