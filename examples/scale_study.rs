//! The paper's scale study (Figures 4–8): power redistribution time and
//! turnaround time against decider frequency and against cluster scale,
//! for SLURM and Penelope.
//!
//! `PENELOPE_EFFORT=full` sweeps the paper's full axes (1056 simulated
//! nodes, 36 pairs — expect many minutes); the default is a quick subset
//! that shows the same shapes.
//!
//! `--trace out.jsonl` additionally runs one small Penelope cluster with
//! the JSONL observer attached and schema-validates the exported
//! protocol-event stream.
//!
//! ```text
//! cargo run --release --example scale_study
//! cargo run --release --example scale_study -- --trace scale.jsonl
//! ```

use std::sync::Arc;

use penelope::experiments::{scale, service, Effort};
use penelope::prelude::*;
use penelope::trace::{validate_jsonl, JsonlObserver};

/// Parse `--trace <path>` from the command line, if present.
fn trace_path() -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--trace" {
            return Some(args.next().unwrap_or_else(|| {
                eprintln!("--trace needs a path");
                std::process::exit(2);
            }));
        }
    }
    None
}

/// A small 8-node mixed cluster traced through the JSONL observer, then
/// schema-validated — the event stream a scale run would produce, at a
/// size that stays instant.
fn export_trace(path: &str) {
    let profiles: Vec<_> = (0..8)
        .map(|i| if i % 2 == 0 { npb::ep() } else { npb::dc() }.scaled(0.05))
        .collect();
    let jsonl = Arc::new(JsonlObserver::create(path).unwrap_or_else(|e| {
        eprintln!("--trace {path}: {e}");
        std::process::exit(2);
    }));
    let sim = ClusterSim::builder()
        .budget(Power::from_watts_u64(8 * 160))
        .workloads(profiles)
        .observer(SharedObserver::from(jsonl.clone()))
        .seed(7)
        .build();
    let report = sim.run(SimTime::from_secs(60));
    jsonl.flush().expect("flush trace");
    let text = std::fs::read_to_string(path).expect("read trace back");
    match validate_jsonl(&text) {
        Ok(summary) => println!(
            "trace: {} events from {} nodes -> {} (conservation_ok: {})",
            summary.events,
            summary.per_node.len(),
            path,
            report.conservation_ok,
        ),
        Err(e) => {
            eprintln!("trace schema validation failed: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let effort = Effort::from_env();
    println!(
        "effort: {effort:?} (max scale {} nodes)\n",
        effort.max_scale_nodes()
    );

    // §4.5.2 service-time numbers first: they explain every curve below.
    print!("{}", service::run().render());
    println!();

    let frequencies: Vec<f64> = match effort {
        Effort::Smoke => vec![1.0, 8.0],
        Effort::Quick => vec![1.0, 4.0, 12.0, 20.0],
        Effort::Full => scale::PAPER_FREQUENCIES.to_vec(),
    };
    let scales: Vec<usize> = match effort {
        Effort::Smoke => vec![44, 96],
        Effort::Quick => vec![44, 132, 264],
        Effort::Full => scale::PAPER_SCALES.to_vec(),
    };

    println!(
        "sweeping frequency at {} nodes...",
        effort.max_scale_nodes()
    );
    let freq_rows = scale::frequency_sweep(effort, &frequencies);
    println!();
    print!("{}", scale::render_fig4(&freq_rows));
    println!();
    print!("{}", scale::render_fig5(&freq_rows));
    println!();
    print!("{}", scale::render_fig7(&freq_rows));
    println!();

    println!("sweeping scale at 1 Hz...");
    let scale_rows = scale::scale_sweep(effort, &scales);
    println!();
    print!("{}", scale::render_fig6(&scale_rows));
    println!();
    print!("{}", scale::render_fig8(&scale_rows));

    println!();
    println!("paper: Penelope's redistribution time improves rapidly with frequency");
    println!("and converges toward SLURM's; SLURM's total redistribution blows up");
    println!("near 20 Hz (dropped packets); SLURM turnaround grows with scale while");
    println!("Penelope's stays flat.");

    if let Some(path) = trace_path() {
        println!();
        export_trace(&path);
    }
}
