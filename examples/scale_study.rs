//! The paper's scale study (Figures 4–8): power redistribution time and
//! turnaround time against decider frequency and against cluster scale,
//! for SLURM and Penelope.
//!
//! `PENELOPE_EFFORT=full` sweeps the paper's full axes (1056 simulated
//! nodes, 36 pairs — expect many minutes); the default is a quick subset
//! that shows the same shapes.
//!
//! ```text
//! cargo run --release --example scale_study
//! ```

use penelope::experiments::{scale, service, Effort};

fn main() {
    let effort = Effort::from_env();
    println!("effort: {effort:?} (max scale {} nodes)\n", effort.max_scale_nodes());

    // §4.5.2 service-time numbers first: they explain every curve below.
    print!("{}", service::run().render());
    println!();

    let frequencies: Vec<f64> = match effort {
        Effort::Smoke => vec![1.0, 8.0],
        Effort::Quick => vec![1.0, 4.0, 12.0, 20.0],
        Effort::Full => scale::PAPER_FREQUENCIES.to_vec(),
    };
    let scales: Vec<usize> = match effort {
        Effort::Smoke => vec![44, 96],
        Effort::Quick => vec![44, 132, 264],
        Effort::Full => scale::PAPER_SCALES.to_vec(),
    };

    println!("sweeping frequency at {} nodes...", effort.max_scale_nodes());
    let freq_rows = scale::frequency_sweep(effort, &frequencies);
    println!();
    print!("{}", scale::render_fig4(&freq_rows));
    println!();
    print!("{}", scale::render_fig5(&freq_rows));
    println!();
    print!("{}", scale::render_fig7(&freq_rows));
    println!();

    println!("sweeping scale at 1 Hz...");
    let scale_rows = scale::scale_sweep(effort, &scales);
    println!();
    print!("{}", scale::render_fig6(&scale_rows));
    println!();
    print!("{}", scale::render_fig8(&scale_rows));

    println!();
    println!("paper: Penelope's redistribution time improves rapidly with frequency");
    println!("and converges toward SLURM's; SLURM's total redistribution blows up");
    println!("near 20 Hz (dropped packets); SLURM turnaround grows with scale while");
    println!("Penelope's stays flat.");
}
