//! A miniature of the paper's Figure 2: Fair vs SLURM vs Penelope across
//! application pairs and initial powercaps, normalized to Fair.
//!
//! Set `PENELOPE_EFFORT=full` for the paper's full 36-pair × 5-cap matrix
//! (minutes), or leave it unset for a quick subset.
//!
//! `--trace out.jsonl` additionally runs the §4.2 nominal Penelope
//! cluster with the JSONL observer attached, writes the structured
//! protocol-event stream to the given path, and schema-validates it.
//!
//! ```text
//! cargo run --release --example nominal_comparison
//! PENELOPE_EFFORT=full cargo run --release --example nominal_comparison
//! cargo run --release --example nominal_comparison -- --trace nominal.jsonl
//! ```

use std::sync::Arc;

use penelope::experiments::{nominal, overhead, Effort};
use penelope::prelude::*;
use penelope::trace::{validate_jsonl, JsonlObserver};

/// Parse `--trace <path>` from the command line, if present.
fn trace_path() -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--trace" {
            return Some(args.next().unwrap_or_else(|| {
                eprintln!("--trace needs a path");
                std::process::exit(2);
            }));
        }
    }
    None
}

/// Run the §4.2 nominal mix (two DC-like, two EP-like applications on
/// four 160 W nodes) with the JSONL observer attached, then validate the
/// exported stream: required fields, known kinds, per-node monotone
/// timestamps.
fn export_trace(path: &str) {
    let profiles: Vec<_> = vec![npb::dc(), npb::dc(), npb::ep(), npb::ep()]
        .into_iter()
        .map(|p| p.scaled(0.05))
        .collect();
    let jsonl = Arc::new(JsonlObserver::create(path).unwrap_or_else(|e| {
        eprintln!("--trace {path}: {e}");
        std::process::exit(2);
    }));
    let sim = ClusterSim::builder()
        .budget(Power::from_watts_u64(4 * 160))
        .workloads(profiles)
        .observer(SharedObserver::from(jsonl.clone()))
        .seed(42)
        .build();
    let report = sim.run(SimTime::from_secs(120));
    jsonl.flush().expect("flush trace");
    let text = std::fs::read_to_string(path).expect("read trace back");
    match validate_jsonl(&text) {
        Ok(summary) => println!(
            "trace: {} events from {} nodes -> {} (conservation_ok: {})",
            summary.events,
            summary.per_node.len(),
            path,
            report.conservation_ok,
        ),
        Err(e) => {
            eprintln!("trace schema validation failed: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let effort = Effort::from_env();
    println!("effort: {effort:?}\n");

    let oh = overhead::run(effort);
    print!("{}", oh.render());
    println!();

    let fig2 = nominal::run(effort);
    print!("{}", fig2.render());
    println!(
        "\npaper: SLURM outperforms Penelope by only ~1.8% on average and \
         never by more than 3%."
    );

    if let Some(path) = trace_path() {
        println!();
        export_trace(&path);
    }
}
