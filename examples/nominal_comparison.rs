//! A miniature of the paper's Figure 2: Fair vs SLURM vs Penelope across
//! application pairs and initial powercaps, normalized to Fair.
//!
//! Set `PENELOPE_EFFORT=full` for the paper's full 36-pair × 5-cap matrix
//! (minutes), or leave it unset for a quick subset.
//!
//! ```text
//! cargo run --release --example nominal_comparison
//! PENELOPE_EFFORT=full cargo run --release --example nominal_comparison
//! ```

use penelope::experiments::{nominal, overhead, Effort};

fn main() {
    let effort = Effort::from_env();
    println!("effort: {effort:?}\n");

    let oh = overhead::run(effort);
    print!("{}", oh.render());
    println!();

    let fig2 = nominal::run(effort);
    print!("{}", fig2.render());
    println!(
        "\npaper: SLURM outperforms Penelope by only ~1.8% on average and \
         never by more than 3%."
    );
}
