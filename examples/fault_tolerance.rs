//! The paper's §4.4 story, live: kill the SLURM coordinator mid-run and
//! watch the centralized system fall below even the static baseline, while
//! Penelope shrugs off the equivalent fault (a client-node crash).
//!
//! ```text
//! cargo run --release --example fault_tolerance
//! ```

use penelope::experiments::{faulty, multijob, nominal, Effort};
use penelope::prelude::*;

fn main() {
    // --- A single illustrative pair first -------------------------------
    // DC (low-power, I/O heavy) on half the nodes, LU (hungry solver) on
    // the other half, 70 W/socket, fault at 25% of the Fair runtime.
    let pair = (npb::dc(), npb::lu());
    let (cap_w, nodes, ts, seed) = (70u64, 8usize, 1.0f64, 3u64);
    let fair = nominal::run_cell(SystemKind::Fair, cap_w, &pair, nodes, ts, seed);
    let slurm_ok = nominal::run_cell(SystemKind::Slurm, cap_w, &pair, nodes, ts, seed);
    let pen_ok = nominal::run_cell(SystemKind::Penelope, cap_w, &pair, nodes, ts, seed);
    let slurm_dead =
        faulty::run_faulty_cell(SystemKind::Slurm, cap_w, &pair, nodes, ts, seed, fair);
    let pen_dead =
        faulty::run_faulty_cell(SystemKind::Penelope, cap_w, &pair, nodes, ts, seed, fair);

    println!("DC+LU pair on {nodes} nodes at {cap_w}W/socket, fault at 25% of the run:");
    println!("  Fair                 {fair:7.1}s   (norm 1.000)");
    let row = |label: &str, rt: f64| {
        println!("  {label:<20} {rt:7.1}s   (norm {:.3})", fair / rt);
    };
    row("SLURM (healthy)", slurm_ok);
    row("Penelope (healthy)", pen_ok);
    row("SLURM (server dead)", slurm_dead);
    row("Penelope (node dead)", pen_dead);
    println!();

    // --- Then the aggregated Figure 3 ------------------------------------
    let fig3 = faulty::run(Effort::from_env());
    print!("{}", fig3.render());
    println!("\npaper: Penelope gains 8-15% mean performance over SLURM under faults,");
    println!("and faulty SLURM performs on average worse than even Fair.");

    // --- And the S4.4 prediction about back-to-back jobs -----------------
    println!();
    let mj = multijob::run(Effort::from_env());
    print!("{}", mj.render());
    println!(
        "faulty SLURM degrades another {:+.1}% going from 1 to 4 jobs per node,\n\
         as S4.4 predicts: more workload changes after the caps froze.",
        mj.slurm_degradation_pct()
    );
}
