//! The experiment runner: regenerate any of the paper's artifacts from the
//! command line.
//!
//! ```text
//! cargo run --release --example paper -- <artifact> [effort]
//!
//! artifacts: overhead | fig2 | fig3 | fig4 | fig5 | fig6 | fig7 | fig8
//!            | service | multijob | assignment | failover | all
//! effort:    smoke | quick | full        (default: quick)
//! ```

use penelope::experiments::{
    assignment, failover, faulty, multijob, nominal, overhead, scale, service, Effort,
};

fn frequencies(effort: Effort) -> Vec<f64> {
    match effort {
        Effort::Smoke => vec![1.0, 8.0],
        Effort::Quick => vec![1.0, 4.0, 12.0, 20.0, 24.0],
        Effort::Full => scale::PAPER_FREQUENCIES.to_vec(),
    }
}

fn scales(effort: Effort) -> Vec<usize> {
    match effort {
        Effort::Smoke => vec![44, 96],
        Effort::Quick => vec![44, 264, 1056],
        Effort::Full => scale::PAPER_SCALES.to_vec(),
    }
}

fn run_artifact(name: &str, effort: Effort) -> bool {
    match name {
        "overhead" => print!("{}", overhead::run(effort).render()),
        "fig2" => print!("{}", nominal::run(effort).render()),
        "fig3" => print!("{}", faulty::run(effort).render()),
        "fig4" => print!(
            "{}",
            scale::render_fig4(&scale::frequency_sweep(effort, &frequencies(effort)))
        ),
        "fig5" => print!(
            "{}",
            scale::render_fig5(&scale::frequency_sweep(effort, &frequencies(effort)))
        ),
        "fig6" => print!(
            "{}",
            scale::render_fig6(&scale::scale_sweep(effort, &scales(effort)))
        ),
        "fig7" => print!(
            "{}",
            scale::render_fig7(&scale::frequency_sweep(effort, &frequencies(effort)))
        ),
        "fig8" => print!(
            "{}",
            scale::render_fig8(&scale::scale_sweep(effort, &scales(effort)))
        ),
        "service" => print!("{}", service::run().render()),
        "multijob" => print!("{}", multijob::run(effort).render()),
        "assignment" => print!("{}", assignment::run(effort).render()),
        "failover" => print!("{}", failover::run(effort).render()),
        "all" => {
            for a in [
                "overhead",
                "fig2",
                "fig3",
                "fig4",
                "fig5",
                "fig6",
                "fig7",
                "fig8",
                "service",
                "multijob",
                "assignment",
                "failover",
            ] {
                println!("==== {a} ====");
                run_artifact(a, effort);
                println!();
            }
        }
        _ => return false,
    }
    true
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let artifact = args.first().map(String::as_str).unwrap_or("all");
    let effort = match args.get(1).map(String::as_str) {
        Some("smoke") => Effort::Smoke,
        Some("full") => Effort::Full,
        Some("quick") | None => Effort::from_env(),
        Some(other) => {
            eprintln!("unknown effort {other:?} (smoke|quick|full)");
            std::process::exit(2);
        }
    };
    eprintln!("# artifact={artifact} effort={effort:?}");
    if !run_artifact(artifact, effort) {
        eprintln!(
            "unknown artifact {artifact:?}\n\
             usage: paper <overhead|fig2|fig3|fig4|fig5|fig6|fig7|fig8|service|multijob|assignment|failover|all> [smoke|quick|full]"
        );
        std::process::exit(2);
    }
}
