//! The threaded deployment: every node really is two OS threads (decider +
//! pool) exchanging messages over channels, with wall-clock periods — the
//! paper's process layout in miniature.
//!
//! ```text
//! cargo run --release --example threaded_cluster
//! ```

use std::time::Duration;

use penelope::prelude::*;
use penelope::runtime::{RuntimeConfig, ThreadedCluster};

fn main() {
    // Four donors (DC-like, ~145 W appetite) and four EP-like hungry nodes,
    // compressed so the whole run takes ~2 s of wall time with 10 ms
    // decider periods.
    let profiles: Vec<Profile> = (0..8)
        .map(|i| {
            let p = if i < 4 { npb::dc() } else { npb::ep() };
            p.scaled(0.012)
        })
        .collect();
    let budget = Power::from_watts_u64(8 * 160);
    let deadline = Duration::from_secs(30);

    println!("8 nodes x 2 threads each, 10ms decider periods, budget {budget}\n");

    let fair = ThreadedCluster::run_fair(RuntimeConfig::fast(budget), profiles.clone(), deadline);
    let rt_fair = fair.makespan_secs().expect("fair finished");
    println!("Fair      makespan {rt_fair:6.3}s");

    let pen =
        ThreadedCluster::run_penelope(RuntimeConfig::fast(budget), profiles.clone(), deadline);
    let rt_pen = pen.makespan_secs().expect("penelope finished");
    println!(
        "Penelope  makespan {rt_pen:6.3}s   ({} peer messages, power accounted: {})",
        pen.net.delivered,
        pen.power_accounted()
    );

    let slurm = ThreadedCluster::run_slurm(RuntimeConfig::fast(budget), profiles, deadline, None);
    let rt_slurm = slurm.makespan_secs().expect("slurm finished");
    println!(
        "SLURM     makespan {rt_slurm:6.3}s   ({} server messages, power accounted: {})",
        slurm.net.delivered,
        slurm.power_accounted()
    );

    println!(
        "\nspeedup over Fair: Penelope {:.2}x, SLURM {:.2}x",
        rt_fair / rt_pen,
        rt_fair / rt_slurm
    );
}
