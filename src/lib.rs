//! # Penelope: peer-to-peer power management
//!
//! A full reproduction of *Penelope: Peer-to-peer Power Management*
//! (Srivastava, Zhang & Hoffmann, ICPP 2022): a distributed power-management
//! system for power-constrained clusters in which every node runs a local
//! decider and a power pool, and power moves between nodes through zero-sum
//! peer-to-peer transactions instead of a central coordinator.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`core`] — the paper's algorithms: local decider (Alg. 1), power pool
//!   (Alg. 2), distributed urgency, and the *Fair* static baseline.
//! * [`slurm`] — the centralized SLURM-style baseline with centralized
//!   urgency and the serial server queue model.
//! * [`power`] — the RAPL-like power interface and simulated implementation.
//! * [`workload`] — NPB-like application power profiles and the
//!   cap→performance model.
//! * [`net`] — the virtual cluster network (latency, drops, partitions,
//!   crashes) and the channel transport.
//! * [`trace`] — the structured observability layer: the typed protocol
//!   event vocabulary and the [`Observer`](trace::Observer) sinks
//!   (no-op, ring buffer, JSONL export, counters) every substrate feeds.
//! * [`sim`] — the deterministic discrete-event cluster simulator with
//!   conservation checking.
//! * [`runtime`] — the threaded in-process deployment (decider + pool
//!   threads per node).
//! * [`metrics`] — performance normalization, redistribution time,
//!   turnaround time.
//! * [`experiments`] — the harness regenerating every table and figure in
//!   the paper's evaluation.
//! * [`daemon`] — the deployable `penelope-daemon`: the same decider/pool
//!   over real UDP sockets, against simulated power or Linux RAPL.
//!
//! ## Quickstart
//!
//! ```
//! use penelope::prelude::*;
//!
//! // A 4-node cluster, 160 W per node, running two power-hungry and two
//! // modest applications under Penelope.
//! let profiles = vec![
//!     penelope::workload::npb::dc(),
//!     penelope::workload::npb::dc(),
//!     penelope::workload::npb::ep(),
//!     penelope::workload::npb::ep(),
//! ];
//! let profiles: Vec<_> = profiles.into_iter().map(|p| p.scaled(0.05)).collect();
//! let cfg = ClusterConfig::checked(SystemKind::Penelope, Power::from_watts_u64(4 * 160));
//! let report = ClusterSim::new(cfg, profiles).run(SimTime::from_secs(600));
//! assert!(report.conservation_ok);
//! println!("makespan: {:?}", report.runtime_secs());
//! ```

#![forbid(unsafe_code)]

pub mod conformance;

pub use penelope_core as core;
pub use penelope_daemon as daemon;
pub use penelope_experiments as experiments;
pub use penelope_metrics as metrics;
pub use penelope_net as net;
pub use penelope_power as power;
pub use penelope_runtime as runtime;
pub use penelope_sim as sim;
pub use penelope_slurm as slurm;
pub use penelope_trace as trace;
pub use penelope_units as units;
pub use penelope_workload as workload;

/// The most commonly used types, in one import.
pub mod prelude {
    pub use penelope_core::{DeciderConfig, LocalDecider, NodeParams, PoolConfig, PowerPool};
    pub use penelope_metrics::{RedistributionTracker, SummaryStats, TurnaroundStats};
    pub use penelope_sim::{ClusterConfig, ClusterSim, FaultAction, FaultScript, SystemKind};
    pub use penelope_trace::{Observer, RingBufferObserver, SharedObserver, TraceEvent};
    pub use penelope_units::{Energy, NodeId, Power, PowerRange, SimDuration, SimTime};
    pub use penelope_workload::{npb, PerfModel, Phase, Profile, WorkloadState};
}
