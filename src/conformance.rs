//! The three [`Substrate`] implementations behind the cross-substrate
//! conformance harness, plus the canned scenarios the test suite runs.
//!
//! The scenario vocabulary and the invariant checker live in
//! `penelope_testkit::conformance`; this module supplies the adapters that
//! execute a [`Scenario`] on each concrete execution substrate:
//!
//! * [`SimSubstrate`] — the deterministic discrete-event simulator.
//!   Single-threaded, so every per-period snapshot is a consistent cut
//!   with exact in-flight accounting.
//! * [`LockstepRuntime`] — real OS threads (one per node) sharing
//!   `PowerPool`s behind mutexes and exchanging `PeerMsg`s over a
//!   [`ThreadNet`], driven in lockstep periods by barriers. The barrier
//!   at each period boundary guarantees no message is in flight, so these
//!   snapshots are consistent cuts too — from genuinely concurrent code.
//! * [`UdpDaemonSubstrate`] — full `penelope-daemon` processes-in-threads
//!   on UDP loopback sockets, free-running on the wall clock. Nodes are
//!   sampled asynchronously, so snapshots are *not* consistent cuts;
//!   per-node invariants are checked every period and the global sums
//!   only at the quiescent end state.
//!
//! All three run the *same* decider and pool code; only power delivery,
//! transport and clock differ. That is the paper's portability claim, and
//! the conformance suite in `tests/conformance.rs` enforces it.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::Duration;

use penelope_core::{
    DeciderPolicy, EngineConfig, EngineInput, EngineOutput, NodeEngine, PeerMsg, PowerGrant,
    SuspicionDigest,
};
use penelope_net::{FaultConfig, FaultySocket, ThreadNet};
use penelope_power::{PowerInterface, SimulatedRapl};
use penelope_sim::{node_seed, ClusterConfig, ClusterSim, FaultAction, FaultScript, SystemKind};
use penelope_testkit::conformance::{
    FaultSpec, NodeSnapshot, PhaseSpec, Scenario, Snapshot, Substrate, SubstrateRun, WorkloadSpec,
};
use penelope_testkit::rng::{Rng, TestRng};
use penelope_trace::{
    CounterObserver, CounterSnapshot, EventKind, FanoutObserver, SharedObserver, TraceEvent,
};

/// Total messages a substrate's transport attempted over a run: delivered
/// sends plus everything the fault plane dropped (acks included). Feeds
/// `SubstrateRun::send_attempts`, the traffic-volume evidence behind the
/// NonVacuousLoss statistical guard.
fn send_attempts(counted: &CounterSnapshot) -> u64 {
    counted.count("msg_sent") + counted.count("msg_dropped") + counted.count("ack_dropped")
}
use penelope_units::{NodeId, Power, PowerRange, SimDuration, SimTime};
use penelope_workload::{PerfModel, Phase, Profile, WorkloadState};

/// Logical decision period shared by the sim and lockstep substrates.
const PERIOD: SimDuration = SimDuration::from_secs(1);

fn watts(w: u64) -> Power {
    Power::from_watts_u64(w)
}

/// Translate a substrate-neutral workload spec into a `Profile`.
///
/// Every node gets the same linear cap→performance model; what the
/// conformance suite varies is the *demand trajectory*, which is what
/// drives deposits, requests and urgency.
pub fn profile_from_spec(spec: &WorkloadSpec, name: &str) -> Profile {
    Profile::new(
        name,
        spec.phases
            .iter()
            .map(|p: &PhaseSpec| Phase::new(p.demand, p.secs))
            .collect(),
        PerfModel::new(watts(60), 1.0),
    )
}

/// The workload list for a scenario: one profile per node, cycling the
/// spec list if it is shorter than the node count.
fn profiles_for(scenario: &Scenario) -> Vec<Profile> {
    (0..scenario.nodes)
        .map(|i| {
            let spec = &scenario.workloads[i % scenario.workloads.len()];
            profile_from_spec(spec, &format!("w{i}"))
        })
        .collect()
}

fn profile_from_spec_scaled(spec: &WorkloadSpec, name: &str, scale: f64) -> Profile {
    profile_from_spec(spec, name).scaled(scale)
}

/// The simulator configuration a scenario maps to. The lockstep runtime
/// reads its decider/pool/RAPL parameters from the same place so the two
/// substrates agree on everything but the execution model.
pub fn sim_config(scenario: &Scenario) -> ClusterConfig {
    let mut cfg = ClusterConfig::checked(SystemKind::Penelope, scenario.cluster_budget());
    cfg.seed = scenario.seed;
    cfg.node.safe_range = scenario.safe;
    cfg.rapl.safe_range = scenario.safe;
    cfg.rapl.read_noise_std = scenario.read_noise;
    cfg.node.decider.period = PERIOD;
    // The scenario's decider policy: urgency, predictive or market. Only
    // the tick-time request/shed shape changes; the engine (escrow,
    // suspicion, gossip, seq/epochs) is identical across policies, which
    // is exactly what the conformance invariants verify.
    cfg.node.decider.policy = scenario.policy;
    // Jitterless ticks: all substrates tick at exact period boundaries,
    // which keeps the per-node RNG streams aligned across substrates.
    cfg.tick_jitter = SimDuration::ZERO;
    // Lossy, churn and partition scenarios lean on the reliability layer:
    // retry dropped requests instead of eating a full timeout per loss
    // (and, under churn or cuts, feed the suspicion set fast enough to
    // matter).
    if matches!(
        scenario.fault,
        FaultSpec::Lossy { .. }
            | FaultSpec::LossyWire { .. }
            | FaultSpec::KillRestart { .. }
            | FaultSpec::Partition { .. }
            | FaultSpec::AsymmetricIsolate { .. }
            | FaultSpec::Flapping { .. }
            | FaultSpec::PartitionChurn { .. }
    ) {
        cfg.node.decider.max_retransmits = 2;
    }
    cfg
}

/// The two node groups a `split_at` partition spec describes.
fn split_groups(nodes: usize, split_at: u32) -> Vec<Vec<NodeId>> {
    let split = (split_at as usize).min(nodes);
    vec![
        (0..split).map(|i| NodeId::new(i as u32)).collect(),
        (split..nodes).map(|i| NodeId::new(i as u32)).collect(),
    ]
}

// ---------------------------------------------------------------------
// Substrate 1: the discrete-event simulator
// ---------------------------------------------------------------------

/// Conformance adapter for [`ClusterSim`].
pub struct SimSubstrate;

impl SimSubstrate {
    /// Run a scenario with a protocol-event observer attached; the
    /// event-stream conformance tests diff what this records against
    /// [`LockstepRuntime::run_observed`].
    pub fn run_observed(
        scenario: &Scenario,
        observer: SharedObserver,
    ) -> Result<SubstrateRun, String> {
        Self::run_with(sim_config(scenario), scenario, observer)
    }

    /// Like [`SimSubstrate::run_observed`] but with the transport
    /// idealized: zero message latency and zero pool service time, so a
    /// request sent in period *p* is served and its grant applied within
    /// period *p* — the same phase alignment the lockstep runtime's
    /// barriers enforce. With read noise and tick jitter also zero, the
    /// two substrates draw identical per-node RNG streams and their
    /// normalized protocol-event streams must be *equal*, which is what
    /// the event-level conformance tests assert.
    pub fn run_observed_ideal(
        scenario: &Scenario,
        observer: SharedObserver,
    ) -> Result<SubstrateRun, String> {
        let mut cfg = sim_config(scenario);
        cfg.latency = penelope_net::LatencyModel::Constant(SimDuration::ZERO);
        cfg.service = penelope_slurm::ServiceModel {
            lo: SimDuration::ZERO,
            hi: SimDuration::ZERO,
        };
        Self::run_with(cfg, scenario, observer)
    }

    fn run_with(
        mut cfg: ClusterConfig,
        scenario: &Scenario,
        observer: SharedObserver,
    ) -> Result<SubstrateRun, String> {
        // Fan a drop counter in next to the caller's observer, so the run
        // reports how often the fault plane actually fired (the
        // NonVacuousLoss guard's evidence).
        let drop_counters = Arc::new(CounterObserver::new());
        cfg.observer =
            FanoutObserver::pair(observer, SharedObserver::from(Arc::clone(&drop_counters)));
        let mut sim = ClusterSim::new(cfg, profiles_for(scenario));
        match scenario.fault {
            FaultSpec::KillNode { node, at_period } => {
                sim.install_faults(&FaultScript::kill_node_at(
                    SimTime::ZERO + PERIOD * at_period,
                    NodeId::new(node),
                ));
            }
            // The simulator's transport delivers in order and exactly
            // once, so only the loss leg of LossyWire is representable;
            // duplication and reordering are exercised on the daemon
            // substrate, where real datagrams pass through the shim.
            FaultSpec::Lossy { .. } | FaultSpec::LossyWire { .. } => {
                sim.install_faults(&FaultScript::none().at(
                    SimTime::ZERO,
                    FaultAction::SetDropRate(scenario.fault.drop_rate()),
                ));
            }
            FaultSpec::KillRestart {
                node,
                kill_at_period,
                restart_at_period,
                drop_permille,
            } => {
                let mut script = FaultScript::kill_restart(
                    NodeId::new(node),
                    SimTime::ZERO + PERIOD * kill_at_period,
                    SimTime::ZERO + PERIOD * restart_at_period,
                );
                if drop_permille > 0 {
                    script = script.at(
                        SimTime::ZERO,
                        FaultAction::SetDropRate(scenario.fault.drop_rate()),
                    );
                }
                sim.install_faults(&script);
            }
            FaultSpec::Partition {
                split_at,
                at_period,
                heal_at_period,
                drop_permille,
            } => {
                let mut script = FaultScript::none()
                    .at(
                        SimTime::ZERO + PERIOD * at_period,
                        FaultAction::Partition(split_groups(scenario.nodes, split_at)),
                    )
                    .at(SimTime::ZERO + PERIOD * heal_at_period, FaultAction::Heal);
                if drop_permille > 0 {
                    script = script.at(
                        SimTime::ZERO,
                        FaultAction::SetDropRate(scenario.fault.drop_rate()),
                    );
                }
                sim.install_faults(&script);
            }
            FaultSpec::AsymmetricIsolate {
                node,
                at_period,
                heal_at_period,
                drop_permille,
            } => {
                // Directional: every link *towards* the victim is cut; its
                // own sends keep delivering.
                let mut script = FaultScript::none();
                for j in 0..scenario.nodes as u32 {
                    if j != node {
                        script = script
                            .partition_link_at(
                                SimTime::ZERO + PERIOD * at_period,
                                NodeId::new(j),
                                NodeId::new(node),
                            )
                            .heal_link_at(
                                SimTime::ZERO + PERIOD * heal_at_period,
                                NodeId::new(j),
                                NodeId::new(node),
                            );
                    }
                }
                if drop_permille > 0 {
                    script = script.at(
                        SimTime::ZERO,
                        FaultAction::SetDropRate(scenario.fault.drop_rate()),
                    );
                }
                sim.install_faults(&script);
            }
            FaultSpec::Flapping {
                node,
                at_period,
                heal_at_period,
            } => {
                // Alternate one-period isolation windows: cut on even
                // offsets from `at_period`, restore on odd ones, restored
                // for good at `heal_at_period`.
                let mut script = FaultScript::none();
                for q in at_period..=heal_at_period {
                    let t = SimTime::ZERO + PERIOD * q;
                    if q < heal_at_period && (q - at_period) % 2 == 0 {
                        script = script.isolate_at(t, NodeId::new(node), scenario.nodes as u32);
                    } else {
                        for j in 0..scenario.nodes as u32 {
                            if j != node {
                                script = script
                                    .heal_link_at(t, NodeId::new(j), NodeId::new(node))
                                    .heal_link_at(t, NodeId::new(node), NodeId::new(j));
                            }
                        }
                    }
                }
                sim.install_faults(&script);
            }
            FaultSpec::PartitionChurn {
                split_at,
                node,
                at_period,
                kill_at_period,
                heal_at_period,
            } => {
                // Same-period heal + restart: the rebooted node must come
                // back into an already-healed network, and the kill-last
                // ordering contract keeps the kill leg from racing any
                // same-tick connectivity change.
                let script = FaultScript::none()
                    .at(
                        SimTime::ZERO + PERIOD * at_period,
                        FaultAction::Partition(split_groups(scenario.nodes, split_at)),
                    )
                    .at(
                        SimTime::ZERO + PERIOD * kill_at_period,
                        FaultAction::Kill(NodeId::new(node)),
                    )
                    .at(SimTime::ZERO + PERIOD * heal_at_period, FaultAction::Heal)
                    .restart_at(SimTime::ZERO + PERIOD * heal_at_period, NodeId::new(node));
                sim.install_faults(&script);
            }
            FaultSpec::None => {}
        }
        let mut snapshots = Vec::with_capacity(scenario.periods as usize);
        for p in 0..scenario.periods {
            sim.advance_to(SimTime::ZERO + PERIOD * (p + 1));
            snapshots.push(sim.conformance_snapshot(p));
        }
        let end = sim.conformance_snapshot(scenario.periods);
        let final_total = end.accounted_live() + end.lost;
        let final_alive: Vec<bool> = end.nodes.iter().map(|n| n.alive).collect();
        let report = sim.finish();
        let counted = drop_counters.snapshot();
        Ok(SubstrateRun {
            substrate: "sim".into(),
            snapshots,
            final_caps: report.final_caps,
            final_alive,
            final_total,
            injected_drops: Some(counted.count("msg_dropped") + counted.count("ack_dropped")),
            send_attempts: Some(send_attempts(&counted)),
            // The DES transport cannot duplicate or reorder.
            duplicated: None,
            delayed: None,
        })
    }
}

impl Substrate for SimSubstrate {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn run(&self, scenario: &Scenario) -> Result<SubstrateRun, String> {
        SimSubstrate::run_observed(scenario, SharedObserver::noop())
    }
}

// ---------------------------------------------------------------------
// Substrate 2: the lockstep threaded runtime
// ---------------------------------------------------------------------

/// Conformance adapter running one real thread per node.
///
/// Each period runs in three barrier-separated phases — tick (Alg. 1),
/// serve (Alg. 2 on the destination pools), apply (grant delivery) — so
/// that at the period boundary every message sent has been consumed.
/// Between periods the coordinator thread injects faults and takes the
/// snapshot; that instant is a consistent cut of truly concurrent state.
pub struct LockstepRuntime;

/// Everything the coordinator shares with the node threads.
///
/// Each node's whole protocol automaton is one [`NodeEngine`] behind a
/// mutex: the owning thread locks it for the duration of a phase, and the
/// coordinator locks it only between barriers (faults, snapshots), when
/// every node thread is parked — so the locks are never contended and the
/// period-boundary reads are consistent cuts.
struct Shared {
    engines: Vec<Mutex<NodeEngine>>,
    /// Caps mirrored out of each engine, in milliwatts (kept so dead
    /// nodes' retired caps stay visible in snapshots).
    caps_mw: Vec<AtomicU64>,
    alive: Vec<AtomicBool>,
    /// Power retired from the system (killed nodes), in milliwatts.
    lost_mw: AtomicU64,
    barrier: Barrier,
}

impl Substrate for LockstepRuntime {
    fn name(&self) -> &'static str {
        "runtime"
    }

    fn run(&self, scenario: &Scenario) -> Result<SubstrateRun, String> {
        LockstepRuntime::run_observed(scenario, SharedObserver::noop())
    }
}

impl LockstepRuntime {
    /// Run a scenario with a protocol-event observer attached. The node
    /// threads emit the same event vocabulary at the same protocol points
    /// as the simulator, so for a jitter-free, noise-free, zero-latency
    /// scenario the normalized streams must match the sim's exactly.
    pub fn run_observed(
        scenario: &Scenario,
        observer: SharedObserver,
    ) -> Result<SubstrateRun, String> {
        let n = scenario.nodes;
        let cfg = sim_config(scenario);
        // Same drop accounting as the sim adapter: the node threads emit
        // MsgDropped/AckDropped when their loss streams fire, and the
        // counter rides next to the caller's observer.
        let drop_counters = Arc::new(CounterObserver::new());
        let observer =
            FanoutObserver::pair(observer, SharedObserver::from(Arc::clone(&drop_counters)));
        let (net, endpoints) = ThreadNet::<PeerMsg>::new(n);
        let shared = Arc::new(Shared {
            engines: (0..n)
                .map(|i| {
                    Mutex::new(NodeEngine::new(
                        NodeId::new(i as u32),
                        n,
                        EngineConfig::new(cfg.node),
                        scenario.budget_per_node,
                        observer.clone(),
                    ))
                })
                .collect(),
            caps_mw: (0..n)
                .map(|_| AtomicU64::new(scenario.budget_per_node.milliwatts()))
                .collect(),
            alive: (0..n).map(|_| AtomicBool::new(true)).collect(),
            lost_mw: AtomicU64::new(0),
            barrier: Barrier::new(n + 1),
        });
        let profiles = profiles_for(scenario);

        let mut threads = Vec::with_capacity(n);
        for (i, endpoint) in endpoints.into_iter().enumerate() {
            let shared = Arc::clone(&shared);
            let profile = profiles[i].clone();
            let rapl_cfg = cfg.rapl.clone();
            let overhead = cfg.management_overhead;
            let initial_cap = scenario.budget_per_node;
            let period = cfg.node.decider.period;
            let seed = node_seed(scenario.seed, i as u64);
            let periods = scenario.periods;
            let obs = observer.clone();
            let drop_rate = scenario.fault.drop_rate();
            // Per-node loss stream, disjoint from the decider RNG so drop
            // injection never perturbs the protocol's draw sequence.
            let drop_seed = node_seed(scenario.seed, u64::MAX - 3 - i as u64);
            threads.push(std::thread::spawn(move || {
                node_loop(
                    i,
                    periods,
                    period,
                    endpoint,
                    shared,
                    SimulatedRapl::new(
                        WorkloadState::with_overhead(profile, overhead),
                        initial_cap,
                        rapl_cfg,
                    ),
                    TestRng::seed_from_u64(seed),
                    drop_rate,
                    TestRng::seed_from_u64(drop_seed),
                    obs,
                )
            }));
        }

        // Coordinator: inject faults at period starts, snapshot at period
        // ends. Node threads are parked on the first barrier of period p
        // while this runs, so the snapshot reads quiescent state.
        let mut snapshots = Vec::with_capacity(scenario.periods as usize);
        // The kill leg shared by KillNode and KillRestart: retire the
        // victim's cap and pool into `lost` and block its traffic.
        let kill = |node: u32| {
            let idx = node as usize;
            if shared.alive[idx].swap(false, Ordering::SeqCst) {
                net.with_faults(|f| f.kill(NodeId::new(node)));
                // The engine retires its pool *and* any escrowed grants —
                // undelivered power dies with its granter, exactly like
                // its cap.
                let (pooled, escrowed) = shared.engines[idx].lock().unwrap().retire();
                let cap = shared.caps_mw[idx].load(Ordering::SeqCst);
                shared.lost_mw.fetch_add(
                    cap + pooled.milliwatts() + escrowed.milliwatts(),
                    Ordering::SeqCst,
                );
            }
        };
        // The restart leg shared by KillRestart and PartitionChurn:
        // zero-sum re-admission — the reborn cap comes out of the lost
        // balance, never exceeding it (nor the node's initial assignment),
        // and only if it funds a cap inside the safe range.
        let restart = |node: u32| {
            let idx = node as usize;
            if !shared.alive[idx].load(Ordering::SeqCst) {
                let lost = shared.lost_mw.load(Ordering::SeqCst);
                let readmit = scenario.budget_per_node.milliwatts().min(lost);
                if readmit >= scenario.safe.min().milliwatts() {
                    shared.lost_mw.fetch_sub(readmit, Ordering::SeqCst);
                    shared.caps_mw[idx].store(readmit, Ordering::SeqCst);
                    net.with_faults(|f| f.revive(NodeId::new(node)));
                    shared.alive[idx].store(true, Ordering::SeqCst);
                }
            }
        };
        // Both directions of every link touching `node` — the flapping
        // isolation window.
        let isolate = |node: u32, cut: bool| {
            net.with_faults(|f| {
                for j in 0..n as u32 {
                    if j != node {
                        if cut {
                            f.cut_link(NodeId::new(j), NodeId::new(node));
                            f.cut_link(NodeId::new(node), NodeId::new(j));
                        } else {
                            f.heal_link(NodeId::new(j), NodeId::new(node));
                            f.heal_link(NodeId::new(node), NodeId::new(j));
                        }
                    }
                }
            });
        };
        for p in 0..scenario.periods {
            match scenario.fault {
                FaultSpec::KillNode { node, at_period } if at_period == p => kill(node),
                FaultSpec::KillRestart {
                    node,
                    kill_at_period,
                    restart_at_period,
                    ..
                } => {
                    if kill_at_period == p {
                        kill(node);
                    }
                    if restart_at_period == p {
                        restart(node);
                    }
                }
                FaultSpec::Partition {
                    split_at,
                    at_period,
                    heal_at_period,
                    ..
                } => {
                    if at_period == p {
                        let groups = split_groups(n, split_at)
                            .into_iter()
                            .map(|g| g.into_iter().collect())
                            .collect();
                        net.with_faults(|f| f.partition(groups));
                    }
                    if heal_at_period == p {
                        net.with_faults(|f| f.heal_partitions());
                    }
                }
                FaultSpec::AsymmetricIsolate {
                    node,
                    at_period,
                    heal_at_period,
                    ..
                } => {
                    // Inbound-only cut: the victim's own sends still land.
                    net.with_faults(|f| {
                        for j in 0..n as u32 {
                            if j != node {
                                if at_period == p {
                                    f.cut_link(NodeId::new(j), NodeId::new(node));
                                }
                                if heal_at_period == p {
                                    f.heal_link(NodeId::new(j), NodeId::new(node));
                                }
                            }
                        }
                    });
                }
                FaultSpec::Flapping {
                    node,
                    at_period,
                    heal_at_period,
                } => {
                    if (at_period..heal_at_period).contains(&p) {
                        isolate(node, (p - at_period) % 2 == 0);
                    } else if heal_at_period == p {
                        isolate(node, false);
                    }
                }
                FaultSpec::PartitionChurn {
                    split_at,
                    node,
                    at_period,
                    kill_at_period,
                    heal_at_period,
                } => {
                    if at_period == p {
                        let groups = split_groups(n, split_at)
                            .into_iter()
                            .map(|g| g.into_iter().collect())
                            .collect();
                        net.with_faults(|f| f.partition(groups));
                    }
                    if kill_at_period == p {
                        kill(node);
                    }
                    if heal_at_period == p {
                        // Heal first, then reboot into the healed network —
                        // the same order the simulator's fault script uses.
                        net.with_faults(|f| f.heal_partitions());
                        restart(node);
                    }
                }
                _ => {}
            }
            shared.barrier.wait(); // release into tick
            shared.barrier.wait(); // tick done
            shared.barrier.wait(); // serve done
            shared.barrier.wait(); // apply done: channels drained
            snapshots.push(snapshot_shared(&shared, p));
        }
        for t in threads {
            t.join().map_err(|_| "node thread panicked".to_string())?;
        }

        let end = snapshot_shared(&shared, scenario.periods);
        let final_total = end.accounted_live() + end.lost;
        let counted = drop_counters.snapshot();
        Ok(SubstrateRun {
            substrate: "runtime".into(),
            final_caps: end.nodes.iter().map(|r| r.cap).collect(),
            final_alive: end.nodes.iter().map(|r| r.alive).collect(),
            snapshots,
            final_total,
            injected_drops: Some(counted.count("msg_dropped") + counted.count("ack_dropped")),
            send_attempts: Some(send_attempts(&counted)),
            // The thread-net delivers in order, exactly once.
            duplicated: None,
            delayed: None,
        })
    }
}

/// One period-boundary consistent cut of the lockstep cluster.
fn snapshot_shared(shared: &Shared, period: u64) -> Snapshot {
    // At the period boundary every sent message has been consumed, so the
    // only in-flight power is what granters hold in escrow for grants that
    // never reached their requester (undelivered entries). Killed nodes'
    // engines were retired at the kill, so they report zero.
    let mut escrowed = Power::ZERO;
    let nodes = shared
        .engines
        .iter()
        .enumerate()
        .map(|(i, engine)| {
            let e = engine.lock().unwrap();
            escrowed += e.escrowed_undelivered();
            let pool = e.pool();
            NodeSnapshot {
                node: i as u32,
                alive: shared.alive[i].load(Ordering::SeqCst),
                cap: Power::from_milliwatts(shared.caps_mw[i].load(Ordering::SeqCst)),
                pool_available: pool.available(),
                pool_deposited: pool.total_deposited(),
                pool_granted: pool.total_granted() + pool.total_taken_local(),
                pool_drained: pool.total_drained(),
            }
        })
        .collect();
    Snapshot {
        period,
        consistent_cut: true,
        in_flight: escrowed,
        lost: Power::from_milliwatts(shared.lost_mw.load(Ordering::SeqCst)),
        nodes,
    }
}

/// Send with scenario-level random loss injected at the sender. Requests,
/// grants and acks all pass through here so a lossy scenario degrades every
/// protocol edge, exactly like the simulator's drop-rate fault.
fn send_lossy(
    endpoint: &penelope_net::ThreadEndpoint<PeerMsg>,
    drop_rate: f64,
    drop_rng: &mut TestRng,
    dst: NodeId,
    msg: PeerMsg,
) -> bool {
    if drop_rate > 0.0 && drop_rng.gen_bool(drop_rate) {
        return false;
    }
    endpoint.send(dst, msg)
}

/// Map one batch of [`NodeEngine`] outputs onto the lockstep substrate:
/// the thread's RAPL + the shared cap mirror, the thread-net (with
/// scenario-level loss injected at the sender), and the shared lost
/// balance.
///
/// The buffer is iterated by index because executing a `SendGrant` feeds
/// the delivery outcome straight back into the engine, which appends its
/// escrow bookkeeping to the same buffer mid-iteration.
///
/// `SetEscrowTimer` outputs are dropped on purpose: this substrate has no
/// timer wheel — the tick phase starts with an `EngineInput::SweepEscrow`,
/// and one sweep per period boundary subsumes every per-entry deadline.
#[allow(clippy::too_many_arguments)]
fn drive_outputs(
    idx: usize,
    now: SimTime,
    engine: &mut NodeEngine,
    outputs: &mut Vec<EngineOutput>,
    rng: &mut TestRng,
    endpoint: &penelope_net::ThreadEndpoint<PeerMsg>,
    drop_rate: f64,
    drop_rng: &mut TestRng,
    rapl: &mut SimulatedRapl<WorkloadState>,
    shared: &Shared,
    emit: &impl Fn(SimTime, EventKind),
) {
    enum SendKind {
        Request,
        Grant,
        Ack(u64),
    }
    let mut i = 0;
    while i < outputs.len() {
        let out = outputs[i].clone();
        i += 1;
        match out {
            EngineOutput::Actuate { cap } => {
                rapl.set_cap(cap, now);
                shared.caps_mw[idx].store(cap.milliwatts(), Ordering::SeqCst);
            }
            EngineOutput::Send { dst, msg, carried } => {
                let kind = match &msg {
                    PeerMsg::Request(_) => SendKind::Request,
                    PeerMsg::Grant(..) => SendKind::Grant,
                    PeerMsg::Ack(a, _) => SendKind::Ack(a.seq),
                };
                let delivered = send_lossy(endpoint, drop_rate, drop_rng, dst, msg);
                emit(now, EventKind::MsgSent { dst, carried });
                match kind {
                    // A refused send (dead peer) or a random drop just
                    // means the decider times out and retries (bounded
                    // retransmits under lossy scenarios).
                    SendKind::Request => {
                        if !delivered {
                            emit(now, EventKind::MsgDropped { dst, carried });
                        }
                    }
                    // Zero grants (empty-handed replies, ack-raced
                    // reminders) are fire-and-forget.
                    SendKind::Grant => {}
                    // A dropped ack is not retried: the granter's
                    // AwaitingAck entry simply expires without credit.
                    SendKind::Ack(seq) => {
                        if !delivered {
                            emit(now, EventKind::AckDropped { dst, seq });
                        }
                    }
                }
            }
            EngineOutput::SendGrant {
                dst,
                msg,
                amount,
                seq,
            } => {
                // Power already debited from the pool: the engine learns
                // the delivery outcome immediately and escrows the amount
                // (AwaitingAck when carried, Undelivered when dropped — the
                // §3.2 atomicity fix), so an undeliverable grant keeps its
                // accounting weight on the granter instead of being lost.
                let delivered = send_lossy(endpoint, drop_rate, drop_rng, dst, msg);
                emit(
                    now,
                    EventKind::MsgSent {
                        dst,
                        carried: amount,
                    },
                );
                if !delivered {
                    emit(
                        now,
                        EventKind::MsgDropped {
                            dst,
                            carried: amount,
                        },
                    );
                }
                engine.handle(
                    now,
                    EngineInput::GrantOutcome {
                        requester: dst,
                        seq,
                        amount,
                        delivered,
                    },
                    rng,
                    outputs,
                );
            }
            EngineOutput::SetEscrowTimer { .. } => {}
            EngineOutput::PowerLost { amount } => {
                shared
                    .lost_mw
                    .fetch_add(amount.milliwatts(), Ordering::SeqCst);
            }
            EngineOutput::Resolved { .. } => {}
        }
    }
    outputs.clear();
}

/// The per-node thread body: the same [`NodeEngine`] the simulator drives,
/// phased by barriers instead of an event queue.
#[allow(clippy::too_many_arguments)]
fn node_loop(
    idx: usize,
    periods: u64,
    period: SimDuration,
    endpoint: penelope_net::ThreadEndpoint<PeerMsg>,
    shared: Arc<Shared>,
    mut rapl: SimulatedRapl<WorkloadState>,
    mut rng: TestRng,
    drop_rate: f64,
    mut drop_rng: TestRng,
    obs: SharedObserver,
) {
    let id = NodeId::new(idx as u32);
    let period_ns = period.as_nanos().max(1);
    // Substrate-level emissions; the engine emits its own events through
    // the same observer. Kinds are tiny `Copy` values, so building one
    // eagerly costs nothing even with the observer off.
    let emit = |at: SimTime, kind: EventKind| {
        obs.emit(|| TraceEvent {
            at,
            node: id,
            period: at.as_nanos() / period_ns,
            kind,
        });
    };
    let mut outputs: Vec<EngineOutput> = Vec::new();
    let mut stashed_grants: Vec<(NodeId, PowerGrant, Option<Box<SuspicionDigest>>)> = Vec::new();
    let mut was_alive = true;
    for p in 0..periods {
        shared.barrier.wait(); // coordinator finished faults/snapshot
        let now = SimTime::ZERO + period * p;
        let me_alive = shared.alive[idx].load(Ordering::SeqCst);
        if !was_alive && me_alive {
            // Reborn between periods: the coordinator re-admitted a cap
            // out of the lost balance. The engine rebuilds controller and
            // pool state fresh, but continues the sequence namespace
            // *after* the pre-crash watermark, so peers' escrow entries
            // keyed by the old (requester, seq) pairs can never collide
            // with — or be replayed into — the new epoch.
            let reborn = Power::from_milliwatts(shared.caps_mw[idx].load(Ordering::SeqCst));
            shared.engines[idx].lock().unwrap().reincarnate(reborn);
            rapl.set_cap(reborn, now);
            stashed_grants.clear();
            was_alive = true;
            emit(now, EventKind::NodeRestarted { readmitted: reborn });
        }
        if was_alive && !me_alive {
            // Killed between periods: the coordinator's kill leg already
            // retired cap, pool *and* escrow through `NodeEngine::retire`;
            // nothing is left thread-side.
            was_alive = false;
        }

        // --- Tick phase -------------------------------------------------
        if me_alive {
            let mut engine = shared.engines[idx].lock().unwrap();
            // Reclaim escrowed grants whose ack deadline has passed before
            // deciding: an Undelivered amount flows back into this node's
            // own pool (the §3.2 abort path); an AwaitingAck entry expires
            // without credit — the power is with the requester or died
            // with it, and re-crediting it would mint.
            engine.handle(now, EngineInput::SweepEscrow, &mut rng, &mut outputs);
            drive_outputs(
                idx,
                now,
                &mut engine,
                &mut outputs,
                &mut rng,
                &endpoint,
                drop_rate,
                &mut drop_rng,
                &mut rapl,
                &shared,
                &emit,
            );
            let reading = rapl.read_power_with(now, &mut rng);
            engine.handle(now, EngineInput::Tick { reading }, &mut rng, &mut outputs);
            drive_outputs(
                idx,
                now,
                &mut engine,
                &mut outputs,
                &mut rng,
                &endpoint,
                drop_rate,
                &mut drop_rng,
                &mut rapl,
                &shared,
                &emit,
            );
        }
        shared.barrier.wait(); // tick done everywhere: all requests sent

        // --- Serve phase ------------------------------------------------
        // Drain this node's queue, answering requests from the local pool
        // (the engine dedups retransmits against its escrow and never
        // double-debits). Grants from other nodes' serve phases may
        // interleave into the queue; stash them for the apply phase.
        {
            let mut guard = if me_alive {
                Some(shared.engines[idx].lock().unwrap())
            } else {
                None
            };
            while let Some(env) = endpoint.try_recv() {
                match env.msg {
                    PeerMsg::Request(req) => {
                        if let Some(engine) = guard.as_deref_mut() {
                            emit(
                                now,
                                EventKind::MsgRecv {
                                    src: env.src,
                                    carried: Power::ZERO,
                                },
                            );
                            engine.handle(
                                now,
                                EngineInput::Msg {
                                    src: env.src,
                                    msg: PeerMsg::Request(req),
                                },
                                &mut rng,
                                &mut outputs,
                            );
                            drive_outputs(
                                idx,
                                now,
                                engine,
                                &mut outputs,
                                &mut rng,
                                &endpoint,
                                drop_rate,
                                &mut drop_rng,
                                &mut rapl,
                                &shared,
                                &emit,
                            );
                        }
                        // dead node: request evaporates
                    }
                    PeerMsg::Grant(g, digest) => {
                        emit(
                            now,
                            EventKind::MsgRecv {
                                src: env.src,
                                carried: g.amount,
                            },
                        );
                        stashed_grants.push((env.src, g, digest));
                    }
                    PeerMsg::Ack(a, digest) => {
                        if let Some(engine) = guard.as_deref_mut() {
                            emit(
                                now,
                                EventKind::MsgRecv {
                                    src: env.src,
                                    carried: Power::ZERO,
                                },
                            );
                            engine.handle(
                                now,
                                EngineInput::Msg {
                                    src: env.src,
                                    msg: PeerMsg::Ack(a, digest),
                                },
                                &mut rng,
                                &mut outputs,
                            );
                            drive_outputs(
                                idx,
                                now,
                                engine,
                                &mut outputs,
                                &mut rng,
                                &endpoint,
                                drop_rate,
                                &mut drop_rng,
                                &mut rapl,
                                &shared,
                                &emit,
                            );
                        }
                        // dead node: ack evaporates
                    }
                }
            }
        }
        shared.barrier.wait(); // serve done everywhere: all grants sent

        // --- Apply phase ------------------------------------------------
        if me_alive {
            let mut engine = shared.engines[idx].lock().unwrap();
            while let Some(env) = endpoint.try_recv() {
                match env.msg {
                    PeerMsg::Grant(g, digest) => {
                        emit(
                            now,
                            EventKind::MsgRecv {
                                src: env.src,
                                carried: g.amount,
                            },
                        );
                        stashed_grants.push((env.src, g, digest));
                    }
                    // Acks race with the apply drain (they are sent from
                    // other nodes' apply phases); one missed here is
                    // handled by the next serve phase, well before any
                    // escrow deadline.
                    PeerMsg::Ack(a, digest) => {
                        emit(
                            now,
                            EventKind::MsgRecv {
                                src: env.src,
                                carried: Power::ZERO,
                            },
                        );
                        engine.handle(
                            now,
                            EngineInput::Msg {
                                src: env.src,
                                msg: PeerMsg::Ack(a, digest),
                            },
                            &mut rng,
                            &mut outputs,
                        );
                        drive_outputs(
                            idx,
                            now,
                            &mut engine,
                            &mut outputs,
                            &mut rng,
                            &endpoint,
                            drop_rate,
                            &mut drop_rng,
                            &mut rapl,
                            &shared,
                            &emit,
                        );
                    }
                    PeerMsg::Request(_) => {} // all requests drained in serve
                }
            }
            for (src, g, digest) in stashed_grants.drain(..) {
                // The engine merges piggybacked gossip before booking the
                // reply, applies the grant, actuates the new cap and acks
                // non-zero amounts back to the granter.
                engine.handle(
                    now,
                    EngineInput::Msg {
                        src,
                        msg: PeerMsg::Grant(g, digest),
                    },
                    &mut rng,
                    &mut outputs,
                );
                drive_outputs(
                    idx,
                    now,
                    &mut engine,
                    &mut outputs,
                    &mut rng,
                    &endpoint,
                    drop_rate,
                    &mut drop_rng,
                    &mut rapl,
                    &shared,
                    &emit,
                );
            }
        }
        shared.barrier.wait(); // apply done: nothing in flight
    }
}

// ---------------------------------------------------------------------
// Substrate 3: UDP daemons on loopback
// ---------------------------------------------------------------------

/// Wall-clock milliseconds per daemon decider period. One daemon
/// iteration corresponds to one logical scenario period, so workload
/// profiles are time-scaled by `DAEMON_PERIOD_MS / 1000`.
const DAEMON_PERIOD_MS: u64 = 20;

/// Conformance adapter spawning one real `penelope-daemon` per node on
/// UDP loopback sockets.
pub struct UdpDaemonSubstrate;

impl Substrate for UdpDaemonSubstrate {
    fn name(&self) -> &'static str {
        "daemon"
    }

    fn run(&self, scenario: &Scenario) -> Result<SubstrateRun, String> {
        use penelope_daemon::{run_daemon_with_shim, DaemonConfig, PowerBackend};
        use penelope_net::DatagramSocket;
        use std::net::UdpSocket;

        if matches!(
            scenario.fault,
            FaultSpec::Partition { .. }
                | FaultSpec::AsymmetricIsolate { .. }
                | FaultSpec::Flapping { .. }
                | FaultSpec::PartitionChurn { .. }
        ) {
            // UDP loopback has no link-level fault plane to cut; the
            // partition matrix runs on the sim and lockstep substrates.
            return Err("partition faults are not supported on the daemon substrate".into());
        }

        let n = scenario.nodes;
        let scale = DAEMON_PERIOD_MS as f64 / 1000.0;
        // Bind first so every daemon can know every peer's real port.
        let sockets: Vec<UdpSocket> = (0..n)
            .map(|_| UdpSocket::bind("127.0.0.1:0"))
            .collect::<std::io::Result<_>>()
            .map_err(|e| format!("bind: {e}"))?;
        let addrs: Vec<std::net::SocketAddr> = sockets
            .iter()
            .map(|s| s.local_addr())
            .collect::<std::io::Result<_>>()
            .map_err(|e| format!("local_addr: {e}"))?;

        // The scenario's message-loss rate, honored on *real datagrams*
        // by slotting each daemon's socket behind the deterministic
        // FaultySocket shim. (Before the shim existed this was silently
        // ignored, and every "lossy" daemon run was lossless.)
        let (drop_permille, dup_permille, jitter_ms) = match scenario.fault {
            FaultSpec::Lossy { drop_permille } => (drop_permille, 0, 0),
            FaultSpec::LossyWire {
                drop_permille,
                dup_permille,
                jitter_ms,
            } => (drop_permille, dup_permille, jitter_ms),
            FaultSpec::KillRestart { drop_permille, .. } => (drop_permille, 0, 0),
            _ => (0, 0, 0),
        };
        let fault_config = |i: usize| FaultConfig {
            seed: node_seed(scenario.seed, u64::MAX - 3 - i as u64),
            drop_permille,
            dup_permille,
            // The latency model's nanoseconds are read as wall-clock time
            // by the shim; a jittered uniform delay lets duplicates and
            // slow originals overtake later sends (real reordering).
            latency: (jitter_ms > 0).then(|| penelope_net::LatencyModel::Uniform {
                lo: SimDuration::ZERO,
                hi: SimDuration::from_millis(u64::from(jitter_ms)),
            }),
        };
        // Per-node fault streams reuse the lockstep substrate's dedicated
        // seed lane (u64::MAX - 3 - i): disjoint from every protocol
        // stream, so injecting loss never perturbs a protocol draw. Peers
        // register in logical node order, which pins direction slot →
        // fault stream across runs even though the ephemeral ports
        // differ — same seed, same drop schedule, bit-identical.
        let shim_active = drop_permille > 0 || dup_permille > 0 || jitter_ms > 0;
        // Returns the socket to hand the daemon plus (when the fault plane
        // is active) a second handle onto the shim, kept so the run can
        // report the shim's lifetime dup/delay counters after shutdown.
        let shimmed =
            |i: usize, socket: UdpSocket| -> (Arc<dyn DatagramSocket>, Option<Arc<FaultySocket>>) {
                if !shim_active {
                    (Arc::new(socket), None)
                } else {
                    let shim = Arc::new(FaultySocket::new(socket, fault_config(i)));
                    for (j, a) in addrs.iter().enumerate() {
                        if j != i {
                            shim.register_peer(*a);
                        }
                    }
                    (Arc::clone(&shim) as Arc<dyn DatagramSocket>, Some(shim))
                }
            };
        // One live shim handle per node, plus the handles of killed
        // incarnations (their counters still count toward the run).
        let mut shims: Vec<Option<Arc<FaultySocket>>> = vec![None; n];
        let mut retired_shims: Vec<Arc<FaultySocket>> = Vec::new();
        // Fault-plane drops and send attempts observed across all daemons
        // (including killed incarnations), for the NonVacuousLoss guard.
        let mut injected_drops = 0u64;
        let mut attempts = 0u64;
        let drops_of = |s: &penelope_daemon::DaemonSummary| {
            s.counters.count("msg_dropped") + s.counters.count("ack_dropped")
        };
        let attempts_of = |s: &penelope_daemon::DaemonSummary| send_attempts(&s.counters);

        // One config construction shared by the initial spawn and the
        // churn restart path: a restarted daemon is a brand-new process on
        // the *same address* (so peers keep reaching it) but with a fresh
        // workload, the re-admitted cap, and the previous incarnation's
        // sequence watermark.
        let mk_cfg = |i: usize, initial_cap: Power, initial_seq: u64| -> DaemonConfig {
            let spec = &scenario.workloads[i % scenario.workloads.len()];
            let peers: Vec<_> = addrs
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, a)| *a)
                .collect();
            DaemonConfig {
                listen: addrs[i],
                node_id: i as u32,
                peers,
                initial_cap,
                node: penelope_core::NodeParams {
                    decider: penelope_core::DeciderConfig {
                        period: SimDuration::from_millis(DAEMON_PERIOD_MS),
                        response_timeout: SimDuration::from_millis(DAEMON_PERIOD_MS / 2),
                        policy: scenario.policy,
                        ..Default::default()
                    },
                    pool: penelope_core::PoolConfig::default(),
                    safe_range: scenario.safe,
                },
                discovery: penelope_core::DiscoveryStrategy::default(),
                power: PowerBackend::SimulatedProfile {
                    profile: profile_from_spec_scaled(spec, &format!("w{i}"), scale),
                },
                rapl: penelope_power::RaplConfig {
                    safe_range: scenario.safe,
                    actuation_delay: SimDuration::ZERO,
                    read_noise_std: scenario.read_noise,
                },
                initial_seq,
                status_every: 1,
                observer: SharedObserver::noop(),
            }
        };

        let mut handles = Vec::with_capacity(n);
        for (i, socket) in sockets.into_iter().enumerate() {
            let (sock, shim) = shimmed(i, socket);
            shims[i] = shim;
            handles.push(Some(
                run_daemon_with_shim(mk_cfg(i, scenario.budget_per_node, 0), sock)
                    .map_err(|e| format!("daemon {i}: {e}"))?,
            ));
        }

        // Sample one status per node per period; kill on schedule. The
        // cuts are asynchronous across nodes, hence `consistent_cut:
        // false` — per-node invariants still hold on every sample.
        let recv_deadline = Duration::from_millis(DAEMON_PERIOD_MS * 50);
        let mut snapshots = Vec::with_capacity(scenario.periods as usize);
        let mut dead_rows: Vec<Option<NodeSnapshot>> = vec![None; n];
        let mut lost = Power::ZERO;
        let mut final_caps: Vec<Power> = vec![Power::ZERO; n];
        let mut final_alive = vec![true; n];
        let mut final_total = Power::ZERO;
        // The killed incarnation's sequence watermark, stashed for the
        // restart so the reborn daemon never reuses a pre-crash seq.
        let mut stashed_seq = 0u64;
        for p in 0..scenario.periods {
            let kill_now = match scenario.fault {
                FaultSpec::KillNode { node, at_period } if at_period == p => Some(node),
                FaultSpec::KillRestart {
                    node,
                    kill_at_period,
                    ..
                } if kill_at_period == p => Some(node),
                _ => None,
            };
            if let Some(node) = kill_now {
                let idx = node as usize;
                if handles[idx].is_some() {
                    let summary = handles[idx].take().expect("alive").stop();
                    injected_drops += drops_of(&summary);
                    attempts += attempts_of(&summary);
                    stashed_seq = summary.next_seq;
                    lost = lost + summary.final_cap + summary.final_pool;
                    final_caps[idx] = summary.final_cap;
                    final_alive[idx] = false;
                    // The killed node's holdings are retired; its frozen
                    // row keeps appearing (alive: false) so pool-balance
                    // checks still cover its lifetime counters.
                    dead_rows[idx] = Some(NodeSnapshot {
                        node,
                        alive: false,
                        cap: summary.final_cap,
                        pool_available: summary.final_pool,
                        pool_deposited: summary.pool_deposited,
                        pool_granted: summary.granted_to_peers + summary.taken_local,
                        pool_drained: summary.pool_drained,
                    });
                }
            }
            if let FaultSpec::KillRestart {
                node,
                restart_at_period,
                ..
            } = scenario.fault
            {
                let idx = node as usize;
                if restart_at_period == p && handles[idx].is_none() {
                    // Zero-sum re-admission: the reborn daemon gets at
                    // most its initial cap back, taken out of `lost`.
                    let readmitted = scenario.budget_per_node.min(lost);
                    if readmitted >= scenario.safe.min() {
                        lost -= readmitted;
                        let socket = UdpSocket::bind(addrs[idx])
                            .map_err(|e| format!("rebind daemon {idx}: {e}"))?;
                        let (sock, shim) = shimmed(idx, socket);
                        if let Some(old) = shims[idx].take() {
                            retired_shims.push(old);
                        }
                        shims[idx] = shim;
                        handles[idx] = Some(
                            run_daemon_with_shim(mk_cfg(idx, readmitted, stashed_seq), sock)
                                .map_err(|e| format!("daemon {idx} restart: {e}"))?,
                        );
                        dead_rows[idx] = None;
                        final_alive[idx] = true;
                    }
                }
            }
            let mut rows = Vec::with_capacity(n);
            for i in 0..n {
                match (&handles[i], &dead_rows[i]) {
                    (Some(h), _) => {
                        let s = h
                            .status_rx
                            .recv_timeout(recv_deadline)
                            .map_err(|e| format!("daemon {i} status at period {p}: {e}"))?;
                        rows.push(NodeSnapshot {
                            node: i as u32,
                            alive: true,
                            cap: s.cap,
                            pool_available: s.pool,
                            pool_deposited: s.pool_deposited,
                            pool_granted: s.pool_granted,
                            pool_drained: s.pool_drained,
                        });
                    }
                    (None, Some(row)) => rows.push(*row),
                    (None, None) => unreachable!("stopped daemons leave a frozen row"),
                }
            }
            snapshots.push(Snapshot {
                period: p,
                consistent_cut: false,
                in_flight: Power::ZERO,
                lost,
                nodes: rows,
            });
        }

        for (i, h) in handles.into_iter().enumerate() {
            if let Some(h) = h {
                let summary = h.stop();
                injected_drops += drops_of(&summary);
                attempts += attempts_of(&summary);
                final_caps[i] = summary.final_cap;
                // Live holdings at the quiescent end.
                final_total = final_total + summary.final_cap + summary.final_pool;
            }
        }
        // Add what faults retired: the end state must not exceed the
        // budget; UDP grants still in flight at shutdown only ever make
        // it *under*count.
        final_total += lost;

        // Fold every shim incarnation's lifetime counters into the run's
        // dup/delay evidence (drops are already counted by the daemons,
        // which observe `SendStatus::Dropped` directly).
        let (mut duplicated, mut delayed) = (0u64, 0u64);
        for shim in shims.iter().flatten().chain(retired_shims.iter()) {
            let stats = shim.stats();
            duplicated += stats.duplicated;
            delayed += stats.delayed;
        }

        Ok(SubstrateRun {
            substrate: "daemon".into(),
            snapshots,
            final_caps,
            final_alive,
            final_total,
            injected_drops: Some(injected_drops),
            send_attempts: Some(attempts),
            duplicated: shim_active.then_some(duplicated),
            delayed: shim_active.then_some(delayed),
        })
    }
}

// ---------------------------------------------------------------------
// Canned scenarios
// ---------------------------------------------------------------------

/// Two heavyweight + two lightweight synthetic workloads: the hungry
/// nodes must pull power from the excess the light nodes deposit.
fn mixed_workloads() -> Vec<WorkloadSpec> {
    let hungry = WorkloadSpec {
        phases: vec![PhaseSpec {
            demand: watts(220),
            secs: 60.0,
        }],
    };
    // Light for six periods, then hungry: exercises deposit, take-local
    // and peer-request paths in one run.
    let ramp = WorkloadSpec {
        phases: vec![
            PhaseSpec {
                demand: watts(100),
                secs: 6.0,
            },
            PhaseSpec {
                demand: watts(210),
                secs: 60.0,
            },
        ],
    };
    vec![hungry, ramp]
}

/// Nominal scenario: no faults, exact power meters.
pub fn nominal_scenario(seed: u64) -> Scenario {
    Scenario {
        name: "nominal".into(),
        seed,
        nodes: 4,
        budget_per_node: watts(160),
        safe: PowerRange::from_watts(80, 300),
        periods: 10,
        workloads: mixed_workloads(),
        fault: FaultSpec::None,
        read_noise: 0.0,
        policy: DeciderPolicy::default(),
    }
}

/// Node-fault scenario: node 1 is killed at the start of period 4; its
/// cap and pooled power must be retired, never redistributed.
pub fn node_fault_scenario(seed: u64) -> Scenario {
    Scenario {
        name: "node-fault".into(),
        seed,
        nodes: 5,
        budget_per_node: watts(160),
        safe: PowerRange::from_watts(80, 300),
        periods: 12,
        workloads: mixed_workloads(),
        fault: FaultSpec::KillNode {
            node: 1,
            at_period: 4,
        },
        read_noise: 0.0,
        policy: DeciderPolicy::default(),
    }
}

/// Noisy-power scenario: ±5 % multiplicative Gaussian read noise on
/// every power meter, no faults.
pub fn noisy_power_scenario(seed: u64) -> Scenario {
    Scenario {
        name: "noisy-power".into(),
        seed,
        nodes: 4,
        budget_per_node: watts(160),
        safe: PowerRange::from_watts(80, 300),
        periods: 10,
        workloads: mixed_workloads(),
        fault: FaultSpec::None,
        read_noise: 0.05,
        policy: DeciderPolicy::default(),
    }
}

/// Lossy-network scenario: every peer message (request, grant, ack) is
/// independently dropped with probability `drop_permille / 1000`; no node
/// dies. With the grant escrow/ack layer in place the peer protocol must
/// book exactly zero `lost` power at every period boundary, for any rate.
pub fn lossy_scenario(seed: u64, drop_permille: u16, periods: u64) -> Scenario {
    Scenario {
        name: format!("lossy-{drop_permille}permille"),
        seed,
        nodes: 4,
        budget_per_node: watts(160),
        safe: PowerRange::from_watts(80, 300),
        periods,
        workloads: mixed_workloads(),
        fault: FaultSpec::Lossy { drop_permille },
        read_noise: 0.0,
        policy: DeciderPolicy::default(),
    }
}

/// Full wire-fault scenario: loss plus duplication plus delay-reordering
/// on every link. On the daemon substrate all three legs run on real
/// datagrams through the socket shim; the deterministic substrates model
/// the loss leg only. Nothing dies, so `lost` must stay exactly zero and
/// every duplicate delivery must be absorbed idempotently.
pub fn lossy_wire_scenario(
    seed: u64,
    drop_permille: u16,
    dup_permille: u16,
    jitter_ms: u16,
    periods: u64,
) -> Scenario {
    Scenario {
        name: format!("lossy-wire-{drop_permille}d-{dup_permille}u-{jitter_ms}ms"),
        seed,
        nodes: 4,
        budget_per_node: watts(160),
        safe: PowerRange::from_watts(80, 300),
        periods,
        workloads: mixed_workloads(),
        fault: FaultSpec::LossyWire {
            drop_permille,
            dup_permille,
            jitter_ms,
        },
        read_noise: 0.0,
        policy: DeciderPolicy::default(),
    }
}

/// A scenario under a non-default decider policy: the nominal mixed
/// workload (or, with loss, the lossy workload) re-run with every node's
/// decider swapped to `policy`. The engine underneath is unchanged, so
/// all conservation invariants must hold for any policy — and for a
/// deterministic substrate pair, the protocol streams must still match
/// event for event.
pub fn policy_scenario(
    seed: u64,
    policy: DeciderPolicy,
    drop_permille: u16,
    periods: u64,
) -> Scenario {
    let mut s = if drop_permille == 0 {
        nominal_scenario(seed)
    } else {
        lossy_scenario(seed, drop_permille, periods)
    };
    s.name = format!("{}-{}", s.name, policy.name());
    s.periods = periods;
    s.policy = policy;
    s
}

/// Node-churn scenario: node 1 crashes at the start of period 3 and
/// reboots at the start of period 10, optionally under background message
/// loss. Its cap and pool are retired at the crash; the restart re-admits
/// `min(initial cap, lost)` back out of the lost balance — zero-sum at
/// every consistent cut — with a persistent sequence namespace so stale
/// pre-crash grants are discarded, never double-paid.
pub fn churn_scenario(seed: u64, drop_permille: u16, periods: u64) -> Scenario {
    Scenario {
        name: format!("churn-{drop_permille}permille"),
        seed,
        nodes: 4,
        budget_per_node: watts(160),
        safe: PowerRange::from_watts(80, 300),
        periods,
        workloads: mixed_workloads(),
        fault: FaultSpec::KillRestart {
            node: 1,
            kill_at_period: 3,
            restart_at_period: 10,
            drop_permille,
        },
        read_noise: 0.0,
        policy: DeciderPolicy::default(),
    }
}

/// Clean-partition scenario: the four nodes split 2|2 from period 3 to
/// period 8, optionally under background loss. No node dies, so every
/// grant stranded at the boundary must be escrow-reclaimed (`lost` stays
/// zero) and the books must balance at every consistent cut.
pub fn partition_scenario(seed: u64, drop_permille: u16, periods: u64) -> Scenario {
    Scenario {
        name: format!("partition-{drop_permille}permille"),
        seed,
        nodes: 4,
        budget_per_node: watts(160),
        safe: PowerRange::from_watts(80, 300),
        periods,
        workloads: mixed_workloads(),
        fault: FaultSpec::Partition {
            split_at: 2,
            at_period: 3,
            heal_at_period: 8,
            drop_permille,
        },
        read_noise: 0.0,
        policy: DeciderPolicy::default(),
    }
}

/// Asymmetric-partition scenario: node 1 goes deaf (every link towards it
/// cut, its own sends still deliver) from period 3 to period 8. Its
/// requests keep being served while every grant back to it dies on the cut
/// link — the worst case for the escrow layer.
pub fn asymmetric_partition_scenario(seed: u64, drop_permille: u16, periods: u64) -> Scenario {
    Scenario {
        name: format!("asymmetric-{drop_permille}permille"),
        seed,
        nodes: 4,
        budget_per_node: watts(160),
        safe: PowerRange::from_watts(80, 300),
        periods,
        workloads: mixed_workloads(),
        fault: FaultSpec::AsymmetricIsolate {
            node: 1,
            at_period: 3,
            heal_at_period: 8,
            drop_permille,
        },
        read_noise: 0.0,
        policy: DeciderPolicy::default(),
    }
}

/// Flapping-node scenario: node 1 alternates between isolated and
/// reachable every period from period 3 until period 9 — suspicion forms,
/// is refuted by the node's own gossip between flaps, forms again.
pub fn flapping_scenario(seed: u64, periods: u64) -> Scenario {
    Scenario {
        name: "flapping".into(),
        seed,
        nodes: 4,
        budget_per_node: watts(160),
        safe: PowerRange::from_watts(80, 300),
        periods,
        workloads: mixed_workloads(),
        fault: FaultSpec::Flapping {
            node: 1,
            at_period: 3,
            heal_at_period: 9,
        },
        read_noise: 0.0,
        policy: DeciderPolicy::default(),
    }
}

/// Concurrent churn + partition: the cluster splits 2|2 at period 3,
/// node 1 crashes inside its half at period 4, and at period 9 the split
/// heals and the node reboots in the same period.
pub fn partition_churn_scenario(seed: u64, periods: u64) -> Scenario {
    Scenario {
        name: "partition-churn".into(),
        seed,
        nodes: 4,
        budget_per_node: watts(160),
        safe: PowerRange::from_watts(80, 300),
        periods,
        workloads: mixed_workloads(),
        fault: FaultSpec::PartitionChurn {
            split_at: 2,
            node: 1,
            at_period: 3,
            kill_at_period: 4,
            heal_at_period: 9,
        },
        read_noise: 0.0,
        policy: DeciderPolicy::default(),
    }
}
